"""Table I — Alpha instruction formats: fetch-stage faults per field.

The paper validates fetch-stage injection by correlating the affected
*bit location* (hence instruction field — opcode, Ra, Rb, function,
displacement, literal, unused/SBZ) with the end result:

* "experiments affecting unused bits always resulted into strict
  correct results";
* "when faults were injected into the opcode or the function and the
  resulting opcode/function is not implemented the benchmarks always
  terminated ... due to illegal instruction";
* "whenever faults altered the displacement field of memory
  instructions the application would crash with a high probability".
"""

from __future__ import annotations

from repro.campaign import Outcome, SEUGenerator, by_fetch_field, \
    render_table
from repro.core import LocationKind

from conftest import publish, runner_for, runs_setting

RUNS_PER_APP = runs_setting(40)
WORKLOADS = ("dct", "jacobi", "pi", "knapsack", "deblocking", "canneal")


def test_table1_fetch_field_analysis(benchmark):
    def campaign():
        merged = []
        for name in WORKLOADS:
            runner = runner_for(name)
            generator = SEUGenerator(runner.golden.profile,
                                     seed=0x7AB1 + hash(name) % 1000)
            faults = generator.batch(RUNS_PER_APP,
                                     location=LocationKind.FETCH)
            merged.extend(runner.run_campaign(faults))
        return merged

    merged = benchmark.pedantic(campaign, rounds=1, iterations=1)
    groups = by_fetch_field(merged)
    text = ("Table I analysis — fetch-stage flips classified by the "
            "instruction field hit\n"
            f"({RUNS_PER_APP} fetch SEU per app, "
            f"{len(merged)} total):\n\n"
            + render_table(groups))

    masked = (Outcome.NON_PROPAGATED, Outcome.STRICTLY_CORRECT)

    if "unused" in groups:
        unused_masked = sum(groups["unused"].fraction(o) for o in masked)
        assert unused_masked == 1.0, \
            "flips in SBZ bits must always be architecturally invisible"
        text += ("\n\nunused/SBZ bits: "
                 f"{unused_masked:.0%} strictly masked "
                 "[paper: 'always resulted into strict correct']")

    if "opcode" in groups:
        opcode_crash = groups["opcode"].fraction(Outcome.CRASHED)
        displacement_crash = groups.get("displacement")
        assert opcode_crash >= 0.3, \
            f"opcode flips should often be fatal, got {opcode_crash:.0%}"
        text += (f"\nopcode flips: {opcode_crash:.0%} crash "
                 "[paper: unimplemented opcode -> illegal instruction]")

    if "displacement" in groups:
        disp_crash = groups["displacement"].fraction(Outcome.CRASHED)
        text += (f"\ndisplacement flips: {disp_crash:.0%} crash "
                 "[paper: memory-instruction displacement -> crash "
                 "with high probability]")

    # Register-selection fields mostly change data, not control.
    for field_name in ("ra", "rb"):
        if field_name in groups:
            changed = 1.0 - sum(groups[field_name].fraction(o)
                                for o in masked)
            text += (f"\n{field_name} flips: {changed:.0%} "
                     "visible (SDC/crash/correct-by-luck)")

    publish("table1_fetch_fields", text)
