"""Fig. 6 — correlation of fault-injection timing with the outcome.

Time-stratified SEU campaigns over PI, Knapsack and Jacobi.  The paper's
trends:

* **PI**: timing is uncorrelated with the outcome (every iteration
  contributes symmetrically to the estimate);
* **Knapsack**: the later the fault, the more likely the result is
  acceptable (bad genes are filtered by subsequent selection rounds);
* **Jacobi**: early faults tend to be strictly correct (the iteration
  re-converges exactly); late faults shift strict-correct mass into
  relaxed-correct (converged, possibly via extra iterations).
"""

from __future__ import annotations

from repro.campaign import Outcome, SEUGenerator, by_time_bins, \
    render_time_table
from repro.core import LocationKind

from conftest import publish, runner_for, runs_setting

BINS = 5
RUNS_PER_BIN = runs_setting(14)

# Locations whose faults actually interact with application data; PC
# faults crash regardless of timing and would flatten every trend.
DATA_LOCATIONS = (LocationKind.EXECUTE, LocationKind.MEM,
                  LocationKind.FETCH, LocationKind.DECODE,
                  LocationKind.INT_REG)


def _campaign(name: str, seed: int):
    runner = runner_for(name)
    window = runner.golden.profile.committed
    generator = SEUGenerator(runner.golden.profile, seed=seed,
                             locations=DATA_LOCATIONS)
    faults = []
    for index in range(BINS):
        low = int(window * index / BINS) + 1
        high = int(window * (index + 1) / BINS)
        for _ in range(RUNS_PER_BIN):
            time = generator.rng.randint(low, max(low, high))
            faults.append(generator.generate(time=time))
    return runner.run_campaign(faults)


def _acceptable_by_bin(results):
    return [bin_dist.acceptable_fraction
            for bin_dist in by_time_bins(results, bins=BINS)]


def _strict_by_bin(results):
    return [bin_dist.fraction(Outcome.STRICTLY_CORRECT)
            for bin_dist in by_time_bins(results, bins=BINS)]


def test_fig6_timing_correlation(benchmark):
    campaigns = benchmark.pedantic(
        lambda: {name: _campaign(name, seed=606 + i)
                 for i, name in enumerate(("pi", "knapsack", "jacobi"))},
        rounds=1, iterations=1)

    sections = []
    for name, results in campaigns.items():
        sections.append(render_time_table(
            results, bins=BINS,
            title=f"--- {name} (n={len(results)}) ---"))
    text = ("Fig. 6 — outcome vs normalised injection time "
            f"({BINS} bins x {RUNS_PER_BIN} SEU, data-path locations):"
            "\n\n" + "\n\n".join(sections))

    # Knapsack: late faults are more acceptable than early faults.
    knap = _acceptable_by_bin(campaigns["knapsack"])
    early_knap = sum(knap[:2]) / 2
    late_knap = sum(knap[-2:]) / 2
    assert late_knap >= early_knap, \
        f"knapsack late acceptability {late_knap:.0%} should exceed " \
        f"early {early_knap:.0%}"

    # PI: no strong monotone trend — late/early acceptability within a
    # generous band of each other.
    pi_accept = _acceptable_by_bin(campaigns["pi"])
    early_pi = sum(pi_accept[:2]) / 2
    late_pi = sum(pi_accept[-2:]) / 2
    assert abs(late_pi - early_pi) <= 0.45, \
        f"pi should show weak timing correlation " \
        f"(early {early_pi:.0%} late {late_pi:.0%})"

    # Jacobi: early faults carry more strict correctness than late ones
    # and late faults more *relaxed* correct than early ones.
    jac_strict = _strict_by_bin(campaigns["jacobi"])
    jac_correct = [bin_dist.fraction(Outcome.CORRECT)
                   for bin_dist in by_time_bins(campaigns["jacobi"],
                                                bins=BINS)]
    early_strict = sum(jac_strict[:2])
    late_strict = sum(jac_strict[-2:])
    early_correct = sum(jac_correct[:2])
    late_correct = sum(jac_correct[-2:])
    assert early_strict + early_correct > 0, "jacobi never survived early"
    assert late_correct >= early_correct - 0.2, \
        "jacobi relaxed-correct mass should not shrink late in the run"

    text += (
        "\n\nPaper-trend checks:\n"
        f"  knapsack acceptable early {early_knap:.0%} -> late "
        f"{late_knap:.0%}  [paper: later faults more acceptable]\n"
        f"  pi acceptable early {early_pi:.0%} vs late {late_pi:.0%}  "
        "[paper: uncorrelated]\n"
        f"  jacobi strict early {early_strict/2:.0%} late "
        f"{late_strict/2:.0%}; correct early {early_correct/2:.0%} "
        f"late {late_correct/2:.0%}  "
        "[paper: strict -> relaxed shift over time]\n")
    publish("fig6_timing", text)
