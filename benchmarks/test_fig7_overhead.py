"""Fig. 7 — GemFI's simulation-time overhead vs unmodified gem5.

Per the paper's methodology: each benchmark is simulated with the
unmodified simulator and with GemFI attached — fault injection activated
(between the fi_activate_inst calls) but with *no faults configured*, so
all per-instruction GemFI machinery runs except the final injection
step.  The paper measures -0.1%..3.3% overhead with 95% confidence
intervals; the negative end is measurement noise (their PI case), which
the check below allows for symmetrically.
"""

from __future__ import annotations

import time

from repro.compiler import compile_source
from repro.core import FaultInjector
from repro.sim import SimConfig, Simulator
from repro.workloads import build

from conftest import SCALE, publish, runs_setting
from repro.campaign import mean_confidence_interval

REPEATS = runs_setting(5)
WORKLOADS = ("dct", "jacobi", "pi", "knapsack", "deblocking", "canneal")
OVERHEAD_CEILING = 0.15   # generous Python-noise bound; paper: 0.033


def _timed_run(asm: str, with_fi: bool) -> float:
    injector = FaultInjector() if with_fi else None
    sim = Simulator(SimConfig(), injector=injector)
    sim.load(asm, "bench")
    start = time.perf_counter()
    result = sim.run(max_instructions=50_000_000)
    elapsed = time.perf_counter() - start
    assert result.status == "completed"
    return elapsed


def test_fig7_gemfi_overhead(benchmark):
    sources = {name: compile_source(build(name, SCALE).source)
               for name in WORKLOADS}

    def measure():
        rows = {}
        for name, asm in sources.items():
            _timed_run(asm, False)      # warm caches / allocator
            overheads = []
            for _ in range(REPEATS):
                plain = _timed_run(asm, False)
                gemfi = _timed_run(asm, True)
                overheads.append(gemfi / plain - 1.0)
            rows[name] = mean_confidence_interval(overheads,
                                                  confidence=0.95)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = ["workload      overhead   95% CI"]
    for name, (mean, low, high) in rows.items():
        lines.append(f"{name:12s}  {mean:+7.1%}   "
                     f"[{low:+7.1%}, {high:+7.1%}]")
        assert mean < OVERHEAD_CEILING, \
            f"{name}: GemFI overhead {mean:.1%} is not minimal"

    average = sum(mean for mean, _, _ in rows.values()) / len(rows)
    text = ("Fig. 7 — GemFI overhead vs unmodified simulator "
            f"(FI active, no faults; {REPEATS} paired runs):\n\n"
            + "\n".join(lines)
            + f"\n\naverage overhead: {average:+.1%}"
            + "\n\nPaper: -0.1%..3.3% (negative = measurement noise, "
              "their PI case).\nReproduced shape: overhead is minimal; "
              "per-app means may be noise-negative\nexactly like the "
              "paper's PI measurement.")
    publish("fig7_overhead", text)
