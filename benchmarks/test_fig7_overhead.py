"""Fig. 7 — GemFI's simulation-time overhead vs unmodified gem5.

Per the paper's methodology: each benchmark is simulated with the
unmodified simulator and with GemFI attached — fault injection activated
(between the fi_activate_inst calls) but with *no faults configured*, so
all per-instruction GemFI machinery runs except the final injection
step.  The paper measures -0.1%..3.3% overhead with 95% confidence
intervals; the negative end is measurement noise (their PI case), which
the check below allows for symmetrically.
"""

from __future__ import annotations

import time

from repro.compiler import compile_source
from repro.core import FaultInjector
from repro.sim import SimConfig, Simulator
from repro.telemetry import RingBufferSink, TraceBus
from repro.workloads import build

from bench_schema import write_bench
from conftest import SCALE, publish, runs_setting
from repro.campaign import mean_confidence_interval

REPEATS = runs_setting(5)
WORKLOADS = ("dct", "jacobi", "pi", "knapsack", "deblocking", "canneal")
OVERHEAD_CEILING = 0.15   # generous Python-noise bound; paper: 0.033
# Telemetry rides the same rare-event paths, so even the *enabled* bus
# (ring sink attached) must stay within the noise bound.
TELEMETRY_WORKLOADS = ("dct", "jacobi", "pi")
# The flight recorder is the one opt-in feature that *does* hook every
# committed instruction inside the FI window (golden-run capture), so it
# gets its own, looser ceiling.  Measured ~7-9% on the tiny workloads.
FLIGHT_WORKLOADS = ("dct", "pi")
FLIGHT_CEILING = 0.50


def _timed_run(asm: str, with_fi: bool, with_bus: bool = False,
               with_flight: bool = False,
               with_idle_profiler: bool = False) -> float:
    injector = FaultInjector() if with_fi else None
    if with_flight:
        from repro.telemetry.flight import FlightRecorder
        injector.install_tracer(FlightRecorder(interval=64))
    bus = TraceBus(RingBufferSink(capacity=256)) if with_bus else None
    sim = Simulator(SimConfig(), injector=injector, bus=bus)
    sim.load(asm, "bench")
    if with_idle_profiler:
        # Constructed but never installed: the zero-overhead-when-
        # disabled claim is that this changes nothing on any hot path.
        from repro.telemetry.profiler import Profiler
        idle = Profiler()
        assert not idle.installed
    start = time.perf_counter()
    result = sim.run(max_instructions=50_000_000)
    elapsed = time.perf_counter() - start
    assert result.status == "completed"
    return elapsed


def test_fig7_gemfi_overhead(benchmark):
    sources = {name: compile_source(build(name, SCALE).source)
               for name in WORKLOADS}

    def measure():
        rows = {}
        for name, asm in sources.items():
            _timed_run(asm, False)      # warm caches / allocator
            overheads = []
            for _ in range(REPEATS):
                plain = _timed_run(asm, False)
                gemfi = _timed_run(asm, True)
                overheads.append(gemfi / plain - 1.0)
            rows[name] = mean_confidence_interval(overheads,
                                                  confidence=0.95)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = ["workload      overhead   95% CI"]
    for name, (mean, low, high) in rows.items():
        lines.append(f"{name:12s}  {mean:+7.1%}   "
                     f"[{low:+7.1%}, {high:+7.1%}]")
        assert mean < OVERHEAD_CEILING, \
            f"{name}: GemFI overhead {mean:.1%} is not minimal"

    average = sum(mean for mean, _, _ in rows.values()) / len(rows)
    text = ("Fig. 7 — GemFI overhead vs unmodified simulator "
            f"(FI active, no faults; {REPEATS} paired runs):\n\n"
            + "\n".join(lines)
            + f"\n\naverage overhead: {average:+.1%}"
            + "\n\nPaper: -0.1%..3.3% (negative = measurement noise, "
              "their PI case).\nReproduced shape: overhead is minimal; "
              "per-app means may be noise-negative\nexactly like the "
              "paper's PI measurement.")
    publish("fig7_overhead", text)


def test_telemetry_overhead(benchmark):
    """Trace-bus overhead guard: an *enabled* bus (ring sink attached)
    only pays on rare events, so FI+telemetry vs FI-alone must stay
    inside the same noise ceiling as Fig. 7.  The measured numbers are
    persisted as JSON for the CI artifact."""
    sources = {name: compile_source(build(name, SCALE).source)
               for name in TELEMETRY_WORKLOADS}

    def measure():
        rows = {}
        for name, asm in sources.items():
            _timed_run(asm, True)       # warm caches / allocator
            overheads = []
            for _ in range(REPEATS):
                fi_only = _timed_run(asm, True)
                traced = _timed_run(asm, True, with_bus=True)
                overheads.append(traced / fi_only - 1.0)
            rows[name] = mean_confidence_interval(overheads,
                                                  confidence=0.95)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = ["workload      overhead   95% CI"]
    for name, (mean, low, high) in rows.items():
        lines.append(f"{name:12s}  {mean:+7.1%}   "
                     f"[{low:+7.1%}, {high:+7.1%}]")
        assert mean < OVERHEAD_CEILING, \
            f"{name}: enabled-telemetry overhead {mean:.1%} is not " \
            f"minimal"

    average = sum(mean for mean, _, _ in rows.values()) / len(rows)
    text = ("Telemetry overhead — FI + enabled trace bus (ring sink) "
            f"vs FI alone ({REPEATS} paired runs):\n\n"
            + "\n".join(lines)
            + f"\n\naverage overhead: {average:+.1%}"
            + "\n\nThe bus only fires on rare lifecycle events "
              "(injections, traps, windows,\ncheckpoints), so enabled-"
              "mode tracing preserves the Fig. 7 property.")
    publish("telemetry_overhead", text)

    write_bench(
        "telemetry_overhead", scale=SCALE, repeats=REPEATS,
        cases={name: {"overhead_mean": mean, "ci_low": low,
                      "ci_high": high}
               for name, (mean, low, high) in rows.items()},
        summary={"average_overhead": average,
                 "ceiling": OVERHEAD_CEILING})


def test_profiler_disabled_overhead(benchmark):
    """Zero-overhead-when-disabled guard for the self-profiler: a run
    with the profiler merely *importable and constructed* (never
    installed) must stay within the same ceiling the trace bus already
    enforces on the Fig. 7 workloads.  Profiling works by per-instance
    method replacement, so the disabled path executes the exact same
    code objects as a build without the profiler; this benchmark pins
    that claim against accidental hot-path coupling in the future."""
    sources = {name: compile_source(build(name, SCALE).source)
               for name in TELEMETRY_WORKLOADS}

    def measure():
        rows = {}
        for name, asm in sources.items():
            _timed_run(asm, True)       # warm caches / allocator
            overheads = []
            for _ in range(REPEATS):
                fi_only = _timed_run(asm, True)
                idle = _timed_run(asm, True, with_idle_profiler=True)
                overheads.append(idle / fi_only - 1.0)
            rows[name] = mean_confidence_interval(overheads,
                                                  confidence=0.95)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = ["workload      overhead   95% CI"]
    for name, (mean, low, high) in rows.items():
        lines.append(f"{name:12s}  {mean:+7.1%}   "
                     f"[{low:+7.1%}, {high:+7.1%}]")
        assert mean < OVERHEAD_CEILING, \
            f"{name}: disabled-profiler overhead {mean:.1%} is not " \
            f"minimal"

    average = sum(mean for mean, _, _ in rows.values()) / len(rows)
    text = ("Self-profiler disabled-mode overhead — FI + constructed-"
            f"but-uninstalled profiler vs FI alone ({REPEATS} paired "
            "runs):\n\n"
            + "\n".join(lines)
            + f"\n\naverage overhead: {average:+.1%}"
            + "\n\nDisabled profiling is structural (no wrappers "
              "installed = original code\nobjects on every path), so "
              "this should be pure measurement noise.")
    publish("profiler_disabled_overhead", text)


def test_flight_recorder_overhead(benchmark):
    """Flight-recorder capture cost: FI + golden-run FlightRecorder vs
    FI alone.  Unlike the trace bus this is a genuine per-commit hook
    (digest every ``interval`` commits, every store sampled), so it is
    opt-in per experiment (``--flight``) and bounded by its own looser
    ceiling rather than the Fig. 7 noise bound.  Disabled-mode flight
    costs nothing: without ``install_tracer`` the injector's
    ``trace_hot`` flag stays off and the plain-FI path is untouched
    (asserted byte-for-byte in tests/test_flight.py)."""
    sources = {name: compile_source(build(name, SCALE).source)
               for name in FLIGHT_WORKLOADS}

    def measure():
        rows = {}
        for name, asm in sources.items():
            _timed_run(asm, True)       # warm caches / allocator
            overheads = []
            for _ in range(REPEATS):
                fi_only = _timed_run(asm, True)
                captured = _timed_run(asm, True, with_flight=True)
                overheads.append(captured / fi_only - 1.0)
            rows[name] = mean_confidence_interval(overheads,
                                                  confidence=0.95)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = ["workload      overhead   95% CI"]
    for name, (mean, low, high) in rows.items():
        lines.append(f"{name:12s}  {mean:+7.1%}   "
                     f"[{low:+7.1%}, {high:+7.1%}]")
        assert mean < FLIGHT_CEILING, \
            f"{name}: flight-recorder capture overhead {mean:.1%} " \
            f"exceeds the ceiling"

    average = sum(mean for mean, _, _ in rows.values()) / len(rows)
    text = ("Flight-recorder capture overhead — FI + golden-run "
            f"FlightRecorder vs FI alone ({REPEATS} paired runs):\n\n"
            + "\n".join(lines)
            + f"\n\naverage overhead: {average:+.1%}"
            + "\n\nCapture hooks every committed instruction in the FI "
              "window (store log +\nperiodic register digests), so it "
              "is opt-in per experiment; the disabled\npath stays on "
              "the plain-FI fast path.")
    publish("flight_overhead", text)

    write_bench(
        "flight_overhead", scale=SCALE, repeats=REPEATS,
        cases={name: {"overhead_mean": mean, "ci_low": low,
                      "ci_high": high}
               for name, (mean, low, high) in rows.items()},
        summary={"average_overhead": average,
                 "ceiling": FLIGHT_CEILING})
