"""Fig. 7 — GemFI's simulation-time overhead vs unmodified gem5.

Per the paper's methodology: each benchmark is simulated with the
unmodified simulator and with GemFI attached — fault injection activated
(between the fi_activate_inst calls) but with *no faults configured*, so
all per-instruction GemFI machinery runs except the final injection
step.  The paper measures -0.1%..3.3% overhead with 95% confidence
intervals; the negative end is measurement noise (their PI case), which
the check below allows for symmetrically.
"""

from __future__ import annotations

import json
import time

from repro.compiler import compile_source
from repro.core import FaultInjector
from repro.sim import SimConfig, Simulator
from repro.telemetry import RingBufferSink, TraceBus
from repro.workloads import build

from conftest import RESULTS_DIR, SCALE, publish, runs_setting
from repro.campaign import mean_confidence_interval

REPEATS = runs_setting(5)
WORKLOADS = ("dct", "jacobi", "pi", "knapsack", "deblocking", "canneal")
OVERHEAD_CEILING = 0.15   # generous Python-noise bound; paper: 0.033
# Telemetry rides the same rare-event paths, so even the *enabled* bus
# (ring sink attached) must stay within the noise bound.
TELEMETRY_WORKLOADS = ("dct", "jacobi", "pi")


def _timed_run(asm: str, with_fi: bool, with_bus: bool = False) -> float:
    injector = FaultInjector() if with_fi else None
    bus = TraceBus(RingBufferSink(capacity=256)) if with_bus else None
    sim = Simulator(SimConfig(), injector=injector, bus=bus)
    sim.load(asm, "bench")
    start = time.perf_counter()
    result = sim.run(max_instructions=50_000_000)
    elapsed = time.perf_counter() - start
    assert result.status == "completed"
    return elapsed


def test_fig7_gemfi_overhead(benchmark):
    sources = {name: compile_source(build(name, SCALE).source)
               for name in WORKLOADS}

    def measure():
        rows = {}
        for name, asm in sources.items():
            _timed_run(asm, False)      # warm caches / allocator
            overheads = []
            for _ in range(REPEATS):
                plain = _timed_run(asm, False)
                gemfi = _timed_run(asm, True)
                overheads.append(gemfi / plain - 1.0)
            rows[name] = mean_confidence_interval(overheads,
                                                  confidence=0.95)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = ["workload      overhead   95% CI"]
    for name, (mean, low, high) in rows.items():
        lines.append(f"{name:12s}  {mean:+7.1%}   "
                     f"[{low:+7.1%}, {high:+7.1%}]")
        assert mean < OVERHEAD_CEILING, \
            f"{name}: GemFI overhead {mean:.1%} is not minimal"

    average = sum(mean for mean, _, _ in rows.values()) / len(rows)
    text = ("Fig. 7 — GemFI overhead vs unmodified simulator "
            f"(FI active, no faults; {REPEATS} paired runs):\n\n"
            + "\n".join(lines)
            + f"\n\naverage overhead: {average:+.1%}"
            + "\n\nPaper: -0.1%..3.3% (negative = measurement noise, "
              "their PI case).\nReproduced shape: overhead is minimal; "
              "per-app means may be noise-negative\nexactly like the "
              "paper's PI measurement.")
    publish("fig7_overhead", text)


def test_telemetry_overhead(benchmark):
    """Trace-bus overhead guard: an *enabled* bus (ring sink attached)
    only pays on rare events, so FI+telemetry vs FI-alone must stay
    inside the same noise ceiling as Fig. 7.  The measured numbers are
    persisted as JSON for the CI artifact."""
    sources = {name: compile_source(build(name, SCALE).source)
               for name in TELEMETRY_WORKLOADS}

    def measure():
        rows = {}
        for name, asm in sources.items():
            _timed_run(asm, True)       # warm caches / allocator
            overheads = []
            for _ in range(REPEATS):
                fi_only = _timed_run(asm, True)
                traced = _timed_run(asm, True, with_bus=True)
                overheads.append(traced / fi_only - 1.0)
            rows[name] = mean_confidence_interval(overheads,
                                                  confidence=0.95)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = ["workload      overhead   95% CI"]
    for name, (mean, low, high) in rows.items():
        lines.append(f"{name:12s}  {mean:+7.1%}   "
                     f"[{low:+7.1%}, {high:+7.1%}]")
        assert mean < OVERHEAD_CEILING, \
            f"{name}: enabled-telemetry overhead {mean:.1%} is not " \
            f"minimal"

    average = sum(mean for mean, _, _ in rows.values()) / len(rows)
    text = ("Telemetry overhead — FI + enabled trace bus (ring sink) "
            f"vs FI alone ({REPEATS} paired runs):\n\n"
            + "\n".join(lines)
            + f"\n\naverage overhead: {average:+.1%}"
            + "\n\nThe bus only fires on rare lifecycle events "
              "(injections, traps, windows,\ncheckpoints), so enabled-"
              "mode tracing preserves the Fig. 7 property.")
    publish("telemetry_overhead", text)

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "scale": SCALE, "repeats": REPEATS,
        "ceiling": OVERHEAD_CEILING,
        "average_overhead": average,
        "workloads": {name: {"mean": mean, "ci_low": low,
                             "ci_high": high}
                      for name, (mean, low, high) in rows.items()},
    }
    with open(RESULTS_DIR / "telemetry_overhead.json", "w",
              encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
