"""Fig. 8 — effect of GemFI's optimisations on campaign execution time.

Three configurations per the paper (log-scale bars there):

1. **plain** — every experiment simulates from power-on (boot + program
   initialisation + FI window);
2. **checkpoint** — one checkpoint taken at ``fi_read_init_all`` (after
   boot + init) fast-forwards every experiment (paper: 3x-244x, 64.5x
   average — dominated by each app's init/kernel time ratio);
3. **NoW** — the campaign spread over 27 workstations x 4 simulation
   slots via the shared-directory protocol (paper: ~108x extra,
   consistent with the slot count).

The checkpoint speedup is *measured* on real campaigns; the NoW speedup
replays the measured per-experiment durations through the deterministic
makespan meta-scheduler (this host has one core; the real multi-process
executor is exercised in the test suite).
"""

from __future__ import annotations

from repro.campaign import (
    NoWConfig,
    SEUGenerator,
    now_speedup,
    simulate_makespan,
)

from conftest import publish, runner_for, runs_setting

EXPERIMENTS = runs_setting(12)
WORKLOADS = ("dct", "jacobi", "pi", "knapsack", "deblocking", "canneal")
NOW = NoWConfig(workstations=27, slots_per_workstation=4)


def _measure(name: str):
    checkpointed = runner_for(name)
    from repro.campaign import CampaignRunner
    from repro.workloads import build
    from conftest import SCALE
    plain = CampaignRunner(build(name, SCALE), use_checkpoint=False)

    generator = SEUGenerator(checkpointed.golden.profile,
                             seed=808 + hash(name) % 100)
    faults = generator.batch(EXPERIMENTS)

    plain_results = plain.run_campaign(faults)
    ckpt_results = checkpointed.run_campaign(faults)
    plain_time = sum(r.wall_seconds for r in plain_results)
    ckpt_time = sum(r.wall_seconds for r in ckpt_results)
    ckpt_durations = [r.wall_seconds for r in ckpt_results]
    return plain_time, ckpt_time, ckpt_durations


def test_fig8_campaign_time_optimisations(benchmark):
    measured = benchmark.pedantic(
        lambda: {name: _measure(name) for name in WORKLOADS},
        rounds=1, iterations=1)

    lines = ["workload      plain(s)  ckpt(s)  ckpt-speedup  "
             "NoW-makespan(s)  NoW-extra-speedup"]
    ckpt_speedups = []
    now_speedups = []
    for name, (plain_time, ckpt_time, durations) in measured.items():
        ckpt_speedup = plain_time / ckpt_time if ckpt_time else 1.0
        # Scale the measured campaign to paper size (~2500 experiments)
        # for the NoW makespan arithmetic.
        paper_scale = max(1, 2500 // max(1, len(durations)))
        scaled = durations * paper_scale
        makespan = simulate_makespan(scaled, NOW)
        now_extra = now_speedup(scaled, NOW)
        ckpt_speedups.append(ckpt_speedup)
        now_speedups.append(now_extra)
        lines.append(
            f"{name:12s}  {plain_time:7.2f}  {ckpt_time:7.2f}  "
            f"{ckpt_speedup:11.2f}x  {makespan:14.2f}  "
            f"{now_extra:16.1f}x")

    # Shape: checkpointing always helps; NoW scheduling approaches the
    # slot count for paper-sized campaigns (paper: ~108x).
    assert all(s > 1.0 for s in ckpt_speedups), \
        "checkpoint fast-forward must speed up every campaign"
    assert all(90.0 < s <= NOW.total_slots for s in now_speedups), \
        "NoW speedup should approach the 108-slot count"

    average_ckpt = sum(ckpt_speedups) / len(ckpt_speedups)
    average_now = sum(now_speedups) / len(now_speedups)
    text = ("Fig. 8 — campaign execution time under GemFI optimisations"
            f" ({EXPERIMENTS} experiments/app, NoW modelled at "
            f"{NOW.workstations}x{NOW.slots_per_workstation} slots "
            "over paper-sized 2500-experiment campaigns):\n\n"
            + "\n".join(lines)
            + f"\n\naverage checkpoint speedup: {average_ckpt:.2f}x "
              "(paper: 3x-244x, avg 64.5x — proportional to each app's "
              "pre-checkpoint share,\n  which is small at these reduced "
              "input scales and grows with REPRO_SCALE)\n"
              f"average NoW extra speedup: {average_now:.1f}x "
              "(paper: ~108x, 'consistent with the number of "
              "simultaneously executed experiments')")
    publish("fig8_campaign_speedup", text)
