"""Shared infrastructure for the paper-reproduction benchmarks.

Each ``test_fig*`` / ``test_table*`` module regenerates one table or
figure of the paper's evaluation.  Results are printed and also written
to ``benchmarks/results/<name>.txt`` so a full ``pytest benchmarks/
--benchmark-only`` run leaves the reproduced artefacts on disk.

Environment knobs:

``REPRO_SCALE``  workload scale: tiny (default) / small / medium / paper
``REPRO_RUNS``   experiments per campaign cell (default: per-bench)
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.campaign import CampaignRunner
from repro.workloads import WORKLOAD_NAMES, build

RESULTS_DIR = Path(__file__).parent / "results"

SCALE = os.environ.get("REPRO_SCALE", "tiny")


def runs_setting(default: int) -> int:
    value = os.environ.get("REPRO_RUNS")
    return int(value) if value else default


_RUNNER_CACHE: dict[tuple[str, str, str | None], CampaignRunner] = {}


def runner_for(name: str, scale: str = SCALE,
               detailed_model: str | None = None) -> CampaignRunner:
    """Session-cached campaign runner (golden run + checkpoint reused)."""
    key = (name, scale, detailed_model)
    if key not in _RUNNER_CACHE:
        _RUNNER_CACHE[key] = CampaignRunner(
            build(name, scale), detailed_model=detailed_model)
    return _RUNNER_CACHE[key]


def publish(name: str, text: str) -> None:
    """Print a reproduced table/figure and persist it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n",
                                             encoding="utf-8")


@pytest.fixture(scope="session")
def all_workload_names():
    return WORKLOAD_NAMES
