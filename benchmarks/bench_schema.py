"""The shared ``BENCH_*.json`` artifact schema (``gemfi-bench-v1``).

Every benchmark that persists machine-readable numbers writes one
``BENCH_<name>.json`` file **at the repository root** through
:func:`write_bench`, so the perf trajectory of the project is a set of
uniformly-shaped, diffable files next to the code they measure:

.. code-block:: json

    {
      "schema": "gemfi-bench-v1",
      "bench": "perf",
      "scale": "tiny",
      "repeats": 3,
      "cases": {"pi/atomic": {"kips_mean": 410.2, "...": "..."}},
      "summary": {"...": "..."}
    }

``cases`` maps a case key (for the perf suite: ``<workload>/<model>``)
to that case's measurements; ``summary`` holds bench-wide aggregates.
CI uploads these files as artifacts and gates on them (see the ``perf``
job and ``benchmarks/perf/check_regression.py``).
"""

from __future__ import annotations

import json
import math
from pathlib import Path

SCHEMA = "gemfi-bench-v1"
REPO_ROOT = Path(__file__).resolve().parent.parent


def bench_payload(bench: str, *, scale: str, repeats: int,
                  cases: dict, summary: dict | None = None) -> dict:
    return {
        "schema": SCHEMA,
        "bench": bench,
        "scale": scale,
        "repeats": repeats,
        "cases": cases,
        "summary": summary or {},
    }


def write_bench(bench: str, *, scale: str, repeats: int, cases: dict,
                summary: dict | None = None,
                root: Path | str | None = None) -> Path:
    """Write ``BENCH_<bench>.json`` at the repo root; returns the path."""
    payload = bench_payload(bench, scale=scale, repeats=repeats,
                            cases=cases, summary=summary)
    path = Path(root or REPO_ROOT) / f"BENCH_{bench}.json"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_bench(path: Path | str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: expected schema '{SCHEMA}', "
            f"got {payload.get('schema')!r}")
    return payload


def mean_stdev(values: list[float]) -> tuple[float, float]:
    """Sample mean and (n-1) standard deviation; stdev 0 for n < 2."""
    n = len(values)
    if n == 0:
        return 0.0, 0.0
    mean = sum(values) / n
    if n < 2:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, math.sqrt(variance)
