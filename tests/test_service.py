"""Campaign-as-a-service tests: store, queue, HTTP API, dispatch."""

import asyncio
import hashlib
import json
import os
import threading
import time

import pytest

from repro.campaign import (
    CampaignRunner,
    SEUGenerator,
    SharedDirCampaign,
    backend_names,
    get_backend,
)
from repro.service import (
    ContentStore,
    Dispatcher,
    JobQueue,
    JobSpec,
    JobSpecError,
    LeaseError,
    QuotaExceeded,
    Service,
    ServiceClient,
    ServiceError,
    UnknownJobError,
    canonical_json_bytes,
    canonical_results,
    digest_bytes,
)
from repro.service.http import HTTPError, Request, Response, Router
from repro.telemetry import PeriodicBeat
from repro.workloads import build


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# -- content store ------------------------------------------------------------


class TestContentStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ContentStore(str(tmp_path))
        digest = store.put_bytes(b"hello")
        assert digest == hashlib.sha256(b"hello").hexdigest()
        assert store.get(digest) == b"hello"
        assert store.has(digest)
        assert store.verify(digest)

    def test_put_is_idempotent_dedup(self, tmp_path):
        store = ContentStore(str(tmp_path))
        first = store.put_bytes(b"same bytes")
        second = store.put_bytes(b"same bytes")
        assert first == second
        assert store.stats() == {"objects": 1,
                                 "bytes": len(b"same bytes")}

    def test_canonical_json_is_order_insensitive(self, tmp_path):
        store = ContentStore(str(tmp_path))
        a = store.put_json({"b": 2, "a": 1})
        b = store.put_json({"a": 1, "b": 2})
        assert a == b
        assert store.get_json(a) == {"a": 1, "b": 2}

    def test_missing_object_raises_keyerror(self, tmp_path):
        store = ContentStore(str(tmp_path))
        with pytest.raises(KeyError):
            store.get("0" * 64)

    def test_malformed_digest_raises_valueerror(self, tmp_path):
        store = ContentStore(str(tmp_path))
        with pytest.raises(ValueError):
            store.get("../../etc/passwd")
        with pytest.raises(ValueError):
            store.path("abc")

    def test_stats_counts_objects_and_bytes(self, tmp_path):
        store = ContentStore(str(tmp_path))
        store.put_bytes(b"x" * 10)
        store.put_bytes(b"y" * 20)
        assert store.stats() == {"objects": 2, "bytes": 30}


# -- job specs ----------------------------------------------------------------


class TestJobSpec:
    def test_digest_is_stable_across_field_order(self):
        a = JobSpec.from_dict({"workload": "pi", "seed": 3})
        b = JobSpec.from_dict({"seed": 3, "workload": "pi"})
        assert a.digest() == b.digest()

    def test_digest_changes_with_seed(self):
        a = JobSpec.from_dict({"workload": "pi", "seed": 1})
        b = JobSpec.from_dict({"workload": "pi", "seed": 2})
        assert a.digest() != b.digest()

    @pytest.mark.parametrize("payload", [
        {},                                        # no workload
        {"workload": "nope"},                      # unknown workload
        {"workload": "pi", "scale": "galactic"},   # unknown scale
        {"workload": "pi", "experiments": 0},      # too few
        {"workload": "pi", "experiments": "ten"},  # wrong type
        {"workload": "pi", "seed": "zero"},        # wrong type
        {"workload": "pi", "location": "moon"},    # unknown location
        {"workload": "pi", "workers": -1},         # negative
        {"workload": "pi", "backend": "carrier-pigeon"},
        {"workload": "pi", "frobnicate": True},    # unknown field
    ])
    def test_invalid_specs_rejected(self, payload):
        with pytest.raises(JobSpecError):
            JobSpec.from_dict(payload)

    def test_canonical_results_strips_host_fields(self):
        results = [{"outcome": "sdc", "wall_seconds": 1.23,
                    "phases": {"run": 1.0}, "instructions": 42}]
        assert canonical_results(results) == [
            {"outcome": "sdc", "instructions": 42}]


# -- job queue ----------------------------------------------------------------


def _spec(seed=0, **kwargs):
    return JobSpec.from_dict({"workload": "pi", "experiments": 2,
                              "seed": seed, **kwargs})


class TestJobQueue:
    def test_submit_and_get(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"))
        job = queue.submit(_spec(), tenant="alice")
        assert job.state == "queued"
        assert queue.get(job.id).tenant == "alice"
        assert queue.depth() == 1
        with pytest.raises(UnknownJobError):
            queue.get("job-doesnotexist")

    def test_priority_ordering_then_fifo(self, tmp_path):
        clock = FakeClock()
        queue = JobQueue(str(tmp_path / "q.db"), clock=clock)
        low = queue.submit(_spec(seed=1), priority=0)
        clock.advance(1)
        high = queue.submit(_spec(seed=2), priority=5)
        clock.advance(1)
        low2 = queue.submit(_spec(seed=3), priority=0)
        order = [queue.lease("w").id for _ in range(3)]
        assert order == [high.id, low.id, low2.id]
        assert queue.lease("w") is None

    def test_quota_enforced_on_active_jobs(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"), default_quota=2)
        queue.submit(_spec(seed=1), tenant="alice")
        queue.submit(_spec(seed=2), tenant="alice")
        with pytest.raises(QuotaExceeded):
            queue.submit(_spec(seed=3), tenant="alice")
        # other tenants have their own budget
        queue.submit(_spec(seed=3), tenant="bob")

    def test_quota_frees_up_when_jobs_finish(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"), default_quota=1)
        first = queue.submit(_spec(seed=1), tenant="alice")
        leased = queue.lease("w")
        queue.complete(leased.id, owner="w",
                       result_digest="0" * 64)
        # done jobs no longer count against the quota
        queue.submit(_spec(seed=2), tenant="alice")
        assert queue.get(first.id).state == "done"

    def test_per_tenant_quota_override(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"), default_quota=1)
        queue.set_quota("vip", 3)
        for seed in range(3):
            queue.submit(_spec(seed=seed), tenant="vip")
        with pytest.raises(QuotaExceeded):
            queue.submit(_spec(seed=9), tenant="vip")

    def test_crash_recovery_requeues_expired_lease(self, tmp_path):
        clock = FakeClock()
        queue = JobQueue(str(tmp_path / "q.db"), clock=clock)
        job = queue.submit(_spec())
        leased = queue.lease("crashed-worker", lease_seconds=60)
        assert leased.id == job.id
        assert queue.lease("other") is None  # nothing left to lease
        clock.advance(61)
        assert queue.requeue_expired() == [job.id]
        recovered = queue.lease("other", lease_seconds=60)
        assert recovered.id == job.id
        assert recovered.attempts == 2  # both leases counted

    def test_lease_extension_prevents_requeue(self, tmp_path):
        clock = FakeClock()
        queue = JobQueue(str(tmp_path / "q.db"), clock=clock)
        job = queue.submit(_spec())
        queue.lease("w", lease_seconds=60)
        clock.advance(50)
        queue.extend_lease(job.id, "w", 60)
        clock.advance(50)  # past the original expiry, not the new one
        assert queue.requeue_expired() == []
        assert queue.get(job.id).state == "leased"

    def test_queue_survives_reopen(self, tmp_path):
        path = str(tmp_path / "q.db")
        job = JobQueue(path).submit(_spec(), tenant="alice",
                                    priority=7)
        reopened = JobQueue(path)  # a fresh process would do this
        restored = reopened.get(job.id)
        assert restored.state == "queued"
        assert restored.priority == 7
        assert restored.spec.as_dict() == _spec().as_dict()

    def test_complete_requires_the_lease(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"))
        job = queue.submit(_spec())
        with pytest.raises(LeaseError):
            queue.complete(job.id, owner="w")  # never leased
        queue.lease("w")
        with pytest.raises(LeaseError):
            queue.complete(job.id, owner="thief")
        queue.complete(job.id, owner="w", result_digest="0" * 64)
        assert queue.get(job.id).state == "done"

    def test_fail_with_retry_requeues(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"))
        job = queue.submit(_spec())
        queue.lease("w")
        queue.fail(job.id, error="boom", owner="w", retry=True)
        assert queue.get(job.id).state == "queued"
        queue.lease("w")
        queue.fail(job.id, error="boom again", owner="w")
        failed = queue.get(job.id)
        assert failed.state == "failed"
        assert "boom again" in failed.error

    def test_cancel_only_queued_jobs(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"))
        job = queue.submit(_spec())
        assert queue.cancel(job.id) is True
        assert queue.get(job.id).state == "cancelled"
        other = queue.submit(_spec(seed=1))
        queue.lease("w")
        assert queue.cancel(other.id) is False  # already leased

    def test_dedup_reuses_finished_identical_spec(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"))
        first = queue.submit(_spec())
        queue.lease("w")
        queue.complete(first.id, owner="w", result_digest="a" * 64,
                       report_digest="b" * 64)
        again = queue.submit(_spec())
        assert again.id != first.id
        assert again.state == "done"
        assert again.reused_from == first.id
        assert again.result_digest == "a" * 64
        # and dedup can be declined
        fresh = queue.submit(_spec(), reuse=False)
        assert fresh.state == "queued"

    def test_tenant_counts(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"))
        queue.submit(_spec(seed=1), tenant="alice")
        queue.submit(_spec(seed=2), tenant="alice")
        queue.submit(_spec(seed=3), tenant="bob")
        queue.lease("w")
        counts = queue.tenant_counts()
        assert counts["alice"] in ({"queued": 1, "leased": 1},
                                   {"queued": 2},)
        assert sum(counts["alice"].values()) == 2
        assert counts["bob"] == {"queued": 1}


class CountingObserver:
    """Just enough of ServiceObserver for queue metric assertions."""

    def __init__(self):
        self.counts = {}

    def inc(self, name, amount=1, **labels):
        self.counts[name] = self.counts.get(name, 0) + amount

    def set_gauge(self, name, value, **labels):
        pass


class TestConcurrentLeaseExpiry:
    def test_expired_lease_requeued_exactly_once(self, tmp_path):
        """Racing dispatchers sweeping the same expired lease must
        hand the job back exactly once — SQLite's BEGIN IMMEDIATE
        serialises the sweep, and the requeue metric reflects one
        recovery, not one per sweeper."""
        clock = FakeClock()
        observer = CountingObserver()
        queue = JobQueue(str(tmp_path / "q.db"), clock=clock,
                         observer=observer)
        job = queue.submit(_spec())
        assert queue.lease("dead-worker", lease_seconds=60).id == job.id
        clock.advance(61)

        sweepers = 6
        barrier = threading.Barrier(sweepers)
        outcomes = []
        lock = threading.Lock()

        def sweep():
            barrier.wait()
            ids = queue.requeue_expired()
            with lock:
                outcomes.append(ids)

        threads = [threading.Thread(target=sweep)
                   for _ in range(sweepers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        claimed = [ids for ids in outcomes if ids]
        assert claimed == [[job.id]]  # exactly one sweeper won
        assert observer.counts["queue.requeued"] == 1
        # The job is claimable again, with both leases on record.
        recovered = queue.lease("live-worker", lease_seconds=60)
        assert recovered.id == job.id
        assert recovered.attempts == 2
        assert observer.counts["queue.leases"] == 2


class TestCampaignArchive:
    def _summary(self, experiments=8):
        return {"schema": "gemfi.campaign_summary.v1",
                "experiments": experiments,
                "outcomes": {"sdc": {"count": experiments,
                                     "weight": float(experiments),
                                     "rate": 1.0}}}

    def test_archive_and_fetch(self, tmp_path):
        observer = CountingObserver()
        queue = JobQueue(str(tmp_path / "q.db"), observer=observer)
        job = queue.submit(_spec(), tenant="alice")
        assert queue.archived_summary(job.id) is None
        queue.archive_summary(job.id, self._summary(), "a" * 64)
        row = queue.archived_summary(job.id)
        assert row["experiments"] == 8
        assert observer.counts["queue.archived"] == 1
        with pytest.raises(UnknownJobError):
            queue.archive_summary("job-nope", self._summary(),
                                  "b" * 64)

    def test_archive_upsert_keeps_latest(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"))
        job = queue.submit(_spec())
        queue.archive_summary(job.id, self._summary(8), "a" * 64)
        queue.archive_summary(job.id, self._summary(12), "b" * 64)
        assert queue.archived_summary(job.id)["experiments"] == 12
        listing = queue.list_archive()
        assert len(listing) == 1
        assert listing[0]["summary_digest"] == "b" * 64

    def test_baseline_tagging(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"))
        job = queue.submit(_spec())
        with pytest.raises(ValueError):
            queue.tag_baseline("release", job.id)  # nothing archived
        queue.archive_summary(job.id, self._summary(), "a" * 64)
        queue.tag_baseline("release", job.id)
        assert queue.baselines() == {"release": job.id}
        assert queue.resolve_baseline("release") == job.id
        assert queue.resolve_baseline("nope") is None
        # Retagging moves the name to the newer job.
        other = queue.submit(_spec(seed=5))
        queue.archive_summary(other.id, self._summary(), "c" * 64)
        queue.tag_baseline("release", other.id)
        assert queue.baselines() == {"release": other.id}
        listing = {row["job"]: row for row in queue.list_archive()}
        assert listing[other.id]["baseline"] == "release"
        assert listing[job.id]["baseline"] is None

    def test_archive_survives_reopen(self, tmp_path):
        path = str(tmp_path / "q.db")
        queue = JobQueue(path)
        job = queue.submit(_spec())
        queue.archive_summary(job.id, self._summary(), "a" * 64)
        queue.tag_baseline("golden", job.id)
        reopened = JobQueue(path)
        assert reopened.archived_summary(job.id)["experiments"] == 8
        assert reopened.baselines() == {"golden": job.id}


# -- periodic beat ------------------------------------------------------------


class TestPeriodicBeat:
    def test_beats_and_joins_on_exit(self):
        before = threading.active_count()
        ticks = []
        with PeriodicBeat(0.01, lambda: ticks.append(1)) as beat:
            assert beat.alive
            deadline = threading.Event()
            deadline.wait(0.08)
        assert not beat.alive
        assert ticks  # it beat at least once
        assert threading.active_count() == before  # joined, not leaked

    def test_nonpositive_interval_never_starts_a_thread(self):
        before = threading.active_count()
        with PeriodicBeat(0.0, lambda: 1 / 0) as beat:
            assert not beat.alive
        assert threading.active_count() == before

    def test_no_thread_accumulation_across_many_uses(self):
        before = threading.active_count()
        for _ in range(10):
            with PeriodicBeat(0.01, lambda: None):
                pass
        assert threading.active_count() == before


# -- HTTP plumbing ------------------------------------------------------------


class TestRouter:
    def _router(self):
        async def handler(request):
            return request
        router = Router()
        router.add("GET", "/v1/jobs/{id}/status", handler)
        router.add("GET", "/v1/jobs", handler)
        router.add("POST", "/v1/jobs", handler)
        return router

    def test_template_binds_params(self):
        router = self._router()
        _, params = router.match("GET", "/v1/jobs/job-abc/status")
        assert params == {"id": "job-abc"}

    def test_unknown_path_is_404(self):
        with pytest.raises(HTTPError) as err:
            self._router().match("GET", "/nope")
        assert err.value.status == 404

    def test_wrong_method_is_405(self):
        with pytest.raises(HTTPError) as err:
            self._router().match("DELETE", "/v1/jobs")
        assert err.value.status == 405

    def test_request_json_rejects_garbage(self):
        request = Request(method="POST", path="/", body=b"not json")
        with pytest.raises(HTTPError) as err:
            request.json()
        assert err.value.status == 400


# -- the API over a live server -----------------------------------------------


@pytest.fixture
def api_service(tmp_path):
    """HTTP API only — no dispatcher thread; tests drive dispatch."""
    service = Service(str(tmp_path / "data"), default_quota=3)
    service.start_http()
    yield service
    service.stop()


class TestServiceApi:
    def test_healthz(self, api_service):
        client = ServiceClient(api_service.url)
        health = client.healthz()
        assert health["ok"] is True
        assert health["queue_depth"] == 0

    def test_submit_validates_and_lists(self, api_service):
        client = ServiceClient(api_service.url, tenant="alice")
        job = client.submit({"workload": "pi", "experiments": 2})
        assert job["state"] == "queued"
        assert job["tenant"] == "alice"
        listing = client.jobs(tenant="alice")
        assert [j["id"] for j in listing["jobs"]] == [job["id"]]
        assert listing["tenants"]["alice"] == {"queued": 1}

    def test_submit_bad_spec_is_400(self, api_service):
        client = ServiceClient(api_service.url)
        with pytest.raises(ServiceError) as err:
            client.submit({"workload": "nope"})
        assert err.value.status == 400
        assert "unknown workload" in err.value.message

    def test_quota_exhaustion_is_429(self, api_service):
        client = ServiceClient(api_service.url, tenant="greedy")
        for seed in range(3):
            client.submit({"workload": "pi", "seed": seed})
        with pytest.raises(ServiceError) as err:
            client.submit({"workload": "pi", "seed": 99})
        assert err.value.status == 429

    def test_unknown_job_is_404(self, api_service):
        client = ServiceClient(api_service.url)
        with pytest.raises(ServiceError) as err:
            client.job("job-missing")
        assert err.value.status == 404

    def test_cancel_queued_then_conflict(self, api_service):
        client = ServiceClient(api_service.url)
        job = client.submit({"workload": "pi"})
        cancelled = client.cancel(job["id"])
        assert cancelled["state"] == "cancelled"
        with pytest.raises(ServiceError) as err:
            client.cancel(job["id"])  # already terminal
        assert err.value.status == 409

    def test_results_missing_is_404(self, api_service):
        client = ServiceClient(api_service.url)
        job = client.submit({"workload": "pi"})
        with pytest.raises(ServiceError) as err:
            client.results(job["id"])
        assert err.value.status == 404

    def test_blob_validation(self, api_service):
        client = ServiceClient(api_service.url)
        with pytest.raises(ServiceError) as err:
            client.fetch("zz")
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            client.fetch("0" * 64)
        assert err.value.status == 404

    def test_coverage_before_share_is_404(self, api_service):
        """A queued job has no campaign share yet — coverage is 404,
        exactly like status/timeline on an undispatched job."""
        client = ServiceClient(api_service.url)
        job = client.submit({"workload": "pi"})
        conn = _http_conn(api_service)
        try:
            conn.request("GET", f"/v1/jobs/{job['id']}/coverage")
            response = conn.getresponse()
            body = response.read()
            assert response.status == 404
            assert "no campaign share" in json.loads(body)["error"]
            conn.request("GET", "/v1/jobs/job-missing/coverage")
            response = conn.getresponse()
            response.read()
            assert response.status == 404
        finally:
            conn.close()

    def test_events_stream_ends_on_terminal_job(self, api_service):
        client = ServiceClient(api_service.url)
        job = client.submit({"workload": "pi"})
        client.cancel(job["id"])
        frames = list(client.events(job["id"], poll=0.05))
        assert [f["type"] for f in frames] == ["status", "end"]
        assert frames[-1]["state"] == "cancelled"

    @pytest.mark.parametrize("path", [
        "/v1/history?limit=abc",
        "/v1/history?since=nan",
        "/v1/history?since=inf",
        "/v1/archive?limit=2.5",
    ])
    def test_bad_query_params_are_400(self, api_service, path):
        conn = _http_conn(api_service)
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            body = json.loads(response.read())
            assert response.status == 400
            assert "must be" in body["error"]
        finally:
            conn.close()

    def test_bad_events_params_are_400(self, api_service):
        client = ServiceClient(api_service.url)
        job = client.submit({"workload": "pi"})
        client.close()
        conn = _http_conn(api_service)
        try:
            conn.request("GET",
                         f"/v1/jobs/{job['id']}/events?max=lots")
            response = conn.getresponse()
            assert response.status == 400
        finally:
            conn.close()


# -- campaign archive + compare over the API ----------------------------------


class TestArchiveAndCompareApi:
    @pytest.fixture
    def archived_pair(self, api_service):
        """Two jobs with archived summaries: base mixed outcomes,
        head all-SDC (a clear regression)."""
        from repro.analysis.diff import CampaignSummary
        from test_coverage import synthetic_results
        client = ServiceClient(api_service.url, tenant="cmp")
        try:
            base = client.submit({"workload": "pi", "seed": 1})
            head = client.submit({"workload": "pi", "seed": 2})
        finally:
            client.close()
        results = synthetic_results(30)
        shifted = [dict(entry) for entry in results]
        for entry in shifted:
            entry["outcome"] = "sdc"
        base_summary = CampaignSummary.from_results(
            results, name=base["id"])
        head_summary = CampaignSummary.from_results(
            shifted, name=head["id"])
        api_service.queue.archive_summary(
            base["id"], base_summary.payload, base_summary.digest())
        api_service.queue.archive_summary(
            head["id"], head_summary.payload, head_summary.digest())
        return base["id"], head["id"], base_summary, head_summary

    def test_summary_endpoint_serves_archive(self, api_service,
                                             archived_pair):
        base_id, _, base_summary, _ = archived_pair
        client = ServiceClient(api_service.url)
        try:
            assert client.summary(base_id) == base_summary.payload
            api_service.queue.tag_baseline("golden", base_id)
            assert client.summary("golden") == base_summary.payload
            with pytest.raises(ServiceError) as err:
                client.summary("job-nope")
        finally:
            client.close()
        assert err.value.status == 404

    def test_archive_index_and_baselines(self, api_service,
                                         archived_pair):
        base_id, head_id, _, _ = archived_pair
        client = ServiceClient(api_service.url)
        try:
            listing = client.archive()
            assert [row["job"] for row in listing["archive"]] == \
                [base_id, head_id]
            assert listing["baselines"] == {}
            tagged = client.tag_baseline("release", base_id)
            assert tagged == {"name": "release", "job": base_id}
            assert client.baselines() == {"release": base_id}
        finally:
            client.close()

    def test_tag_baseline_error_codes(self, api_service,
                                      archived_pair):
        client = ServiceClient(api_service.url)
        try:
            job = client.submit({"workload": "pi", "seed": 9})
            with pytest.raises(ServiceError) as err:
                client.tag_baseline("rel", job["id"])  # not archived
            assert err.value.status == 409
            with pytest.raises(ServiceError) as err:
                client.tag_baseline("rel", "job-nope")
            assert err.value.status == 404
        finally:
            client.close()

    def test_compare_matches_local_diff(self, api_service,
                                        archived_pair):
        """The server's /v1/compare numbers are exactly what a local
        CampaignDiff of the same summaries computes — one shared
        implementation, no drift between CLI and service."""
        from repro.analysis.diff import CampaignDiff
        base_id, head_id, base_summary, head_summary = archived_pair
        client = ServiceClient(api_service.url)
        try:
            client.tag_baseline("golden", base_id)
            served = client.compare("golden", head_id)
        finally:
            client.close()
        local = CampaignDiff(base_summary, head_summary).payload
        assert served == local
        assert served["verdict"] == "regressed"
        assert served["outcomes"]["sdc"]["significant"]

    def test_compare_refreshes_gauges(self, api_service,
                                      archived_pair):
        base_id, head_id, _, _ = archived_pair
        client = ServiceClient(api_service.url)
        try:
            client.compare(base_id, head_id)
            text = client.metrics_text()
        finally:
            client.close()
        assert "compare_verdict" in text
        assert 'base="%s"' % base_id in text

    def test_compare_param_validation(self, api_service,
                                      archived_pair):
        base_id, head_id, _, _ = archived_pair
        client = ServiceClient(api_service.url)
        try:
            with pytest.raises(ServiceError) as err:
                client.compare(base_id, "job-nope")
            assert err.value.status == 404
            with pytest.raises(ServiceError) as err:
                client.compare(base_id, head_id, confidence=2.0)
            assert err.value.status == 400
            conn = _http_conn(api_service)
            try:
                conn.request("GET", "/v1/compare?base=only")
                response = conn.getresponse()
                body = json.loads(response.read())
                assert response.status == 400
                assert "base= and head=" in body["error"]
            finally:
                conn.close()
        finally:
            client.close()


# -- dispatch + end-to-end ----------------------------------------------------


class TestDispatcherAndE2E:
    @pytest.fixture(scope="class")
    def service(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("svc")
        service = Service(str(root / "data")).start()
        yield service
        service.stop()

    @pytest.fixture(scope="class")
    def done_job(self, service):
        client = ServiceClient(service.url, tenant="e2e")
        job = client.submit({"workload": "pi", "scale": "tiny",
                             "experiments": 3, "seed": 11})
        return client.wait(job["id"], timeout=180)

    def test_job_completes_with_digests(self, done_job):
        assert done_job["state"] == "done"
        assert done_job["error"] is None
        assert done_job["result_digest"]
        assert done_job["report_digest"]
        assert done_job["checkpoint_digest"]

    def test_results_digest_round_trip(self, service, done_job):
        client = ServiceClient(service.url)
        blob = client.fetch(done_job["result_digest"])
        assert hashlib.sha256(blob).hexdigest() \
            == done_job["result_digest"]
        results = json.loads(blob)
        assert len(results) == 3
        assert all("wall_seconds" not in entry for entry in results)

    def test_service_results_match_direct_campaign(
            self, service, done_job, tmp_path):
        """The acceptance bar: the service's stored result set is
        byte-identical to a direct SharedDirCampaign run of the same
        spec and seed on this machine."""
        runner = CampaignRunner(build("pi", "tiny"))
        campaign = SharedDirCampaign(str(tmp_path / "share"),
                                     "pi", "tiny")
        faults = SEUGenerator(runner.golden.profile,
                              seed=11).batch(3)
        campaign.publish(runner, faults, seed=11)
        campaign.worker_loop("direct", runner)
        direct = canonical_json_bytes(
            canonical_results(campaign.collect()))
        served = ServiceClient(service.url).fetch(
            done_job["result_digest"])
        assert served == direct
        assert digest_bytes(direct) == done_job["result_digest"]

    def test_resubmit_same_spec_reuses_result(self, service,
                                              done_job):
        client = ServiceClient(service.url, tenant="e2e")
        again = client.submit({"workload": "pi", "scale": "tiny",
                               "experiments": 3, "seed": 11})
        assert again["state"] == "done"
        assert again["reused_from"] == done_job["id"]
        assert again["result_digest"] == done_job["result_digest"]

    def test_same_seed_rerun_lands_on_same_digest(self, service,
                                                  done_job):
        """Digest stability: forcing a full re-run (reuse=False) of
        the same seed must produce the same content address, and the
        store keeps a single deduplicated object."""
        client = ServiceClient(service.url, tenant="e2e")
        before = client.store_stats()["objects"]
        job = client.submit({"workload": "pi", "scale": "tiny",
                             "experiments": 3, "seed": 11},
                            reuse=False)
        assert job["state"] != "done" or not job["reused_from"]
        final = client.wait(job["id"], timeout=180)
        assert final["state"] == "done"
        assert final["result_digest"] == done_job["result_digest"]
        # results + checkpoint dedupe; only the report (which names
        # its per-job share directory) and the archived summary
        # (whose name is the job id) are new objects
        assert client.store_stats()["objects"] <= before + 2
        assert final["checkpoint_digest"] \
            == done_job["checkpoint_digest"]

    def test_job_status_exposes_campaign_share(self, service,
                                               done_job):
        client = ServiceClient(service.url)
        status = client.status(done_job["id"])
        assert status["job"]["state"] == "done"
        assert status["campaign"]["completed"] == 3
        assert status["campaign"]["service"]["job"] == done_job["id"]

    def test_report_renders(self, service, done_job):
        client = ServiceClient(service.url)
        report = client.report(done_job["id"])
        assert "Campaign report" in report
        html = client.report(done_job["id"], fmt="html")
        assert html.lstrip().startswith("<")

    def test_failed_job_records_error(self, tmp_path):
        """A job whose campaign collapses must land in 'failed' with
        the cause, not wedge the dispatcher."""
        queue = JobQueue(str(tmp_path / "q.db"))
        store = ContentStore(str(tmp_path / "store"))
        dispatcher = Dispatcher(queue, store, str(tmp_path),
                                lease_seconds=60)

        spec = JobSpec.from_dict({"workload": "pi",
                                  "experiments": 2})
        job = queue.submit(spec)

        def exploding(job):
            raise RuntimeError("simulated worker loss")
        dispatcher.run_job = exploding
        assert dispatcher.poll_once() is True
        failed = queue.get(job.id)
        assert failed.state == "failed"
        assert "simulated worker loss" in failed.error

    def test_backend_registry_resolves_shared_dir(self):
        assert "shared-dir" in backend_names()
        assert get_backend("shared-dir") is SharedDirCampaign
        with pytest.raises(KeyError):
            get_backend("carrier-pigeon")

    def test_dispatcher_marks_share_for_status(self, service,
                                               done_job):
        """gemfi status on a service-run share names its job/tenant
        and live queue numbers (the service.json marker)."""
        from repro.telemetry import read_status
        share = ServiceClient(service.url).job(
            done_job["id"])["share_dir"]
        assert os.path.isfile(os.path.join(share, "service.json"))
        status = read_status(share)
        assert status.service["job"] == done_job["id"]
        assert status.service["tenant"] == "e2e"
        assert "queue_depth" in status.service
        assert "e2e" in status.service["tenants"]


# -- observability plane -------------------------------------------------------


def _http_conn(service):
    import http.client
    return http.client.HTTPConnection(service.host, service.port,
                                      timeout=10.0)


class TestKeepAliveAndRequestIds:
    def test_connection_is_reused_across_requests(self, api_service):
        conn = _http_conn(api_service)
        try:
            conn.request("GET", "/v1/healthz")
            first = conn.getresponse()
            first.read()
            assert first.getheader("Connection") == "keep-alive"
            sock = conn.sock
            conn.request("GET", "/v1/healthz")
            second = conn.getresponse()
            second.read()
            assert conn.sock is sock  # same socket, no reconnect
        finally:
            conn.close()

    def test_connection_close_is_honoured(self, api_service):
        conn = _http_conn(api_service)
        try:
            conn.request("GET", "/v1/healthz",
                         headers={"Connection": "close"})
            response = conn.getresponse()
            response.read()
            assert response.getheader("Connection") == "close"
        finally:
            conn.close()

    def test_request_id_is_minted_and_echoed(self, api_service):
        conn = _http_conn(api_service)
        try:
            conn.request("GET", "/v1/healthz")
            response = conn.getresponse()
            response.read()
            minted = response.getheader("X-Request-Id")
            assert minted and minted.startswith("req-")
            conn.request("GET", "/v1/healthz",
                         headers={"X-Request-Id": "req-mine-123"})
            response = conn.getresponse()
            response.read()
            assert response.getheader("X-Request-Id") == "req-mine-123"
        finally:
            conn.close()

    def test_service_client_pools_its_connection(self, api_service):
        client = ServiceClient(api_service.url)
        try:
            client.healthz()
            assert client._conn is not None
            sock = client._conn.sock
            client.healthz()
            assert client._conn.sock is sock
        finally:
            client.close()
        assert client._conn is None

    def test_errors_keep_the_connection_alive(self, api_service):
        """A 404 is a valid routed response; only parse errors force
        Connection: close."""
        conn = _http_conn(api_service)
        try:
            conn.request("GET", "/v1/jobs/job-nope")
            response = conn.getresponse()
            response.read()
            assert response.status == 404
            assert response.getheader("Connection") == "keep-alive"
        finally:
            conn.close()


class TestGeneric500:
    def test_internal_error_is_generic_and_journalled(self,
                                                      api_service):
        async def boom(request):
            raise RuntimeError("secret internal detail 42")

        api_service.app.router.add("GET", "/boom", boom)
        conn = _http_conn(api_service)
        try:
            conn.request("GET", "/boom",
                         headers={"X-Request-Id": "req-boom-1"})
            response = conn.getresponse()
            body = response.read().decode("utf-8")
        finally:
            conn.close()
        assert response.status == 500
        payload = json.loads(body)
        # The client sees only a generic body + the request id.
        assert payload == {"error": "internal server error",
                           "request_id": "req-boom-1"}
        assert "secret" not in body
        # The operator gets the full traceback in the error log.
        error_log = api_service.observer.log_path("error.jsonl")
        with open(error_log, "r", encoding="utf-8") as handle:
            entries = [json.loads(line) for line in handle]
        entry = entries[-1]
        assert entry["request_id"] == "req-boom-1"
        assert entry["type"] == "RuntimeError"
        assert "secret internal detail 42" in entry["traceback"]
        assert "handle_connection" not in body


class TestMetricsEndpoint:
    def test_scrape_parses_and_request_counter_advances(
            self, api_service):
        from repro.telemetry.export import parse_openmetrics
        client = ServiceClient(api_service.url)
        try:
            client.healthz()
            first = parse_openmetrics(client.metrics_text())
            client.healthz()
            client.healthz()
            second = parse_openmetrics(client.metrics_text())
        finally:
            client.close()

        def healthz_count(families):
            return sum(
                value for sample, labels, value
                in families["http_requests"]["samples"]
                if sample == "http_requests_total"
                and labels.get("route") == "/v1/healthz")

        assert healthz_count(second) == healthz_count(first) + 2
        assert first["http_requests"]["type"] == "counter"
        assert "queue_depth" in second
        assert "http_request_duration_seconds" in second

    def test_scrape_carries_openmetrics_content_type(self,
                                                     api_service):
        conn = _http_conn(api_service)
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            response.read()
            assert "openmetrics-text" \
                in response.getheader("Content-Type")
        finally:
            conn.close()

    def test_submissions_and_quota_are_counted(self, api_service):
        from repro.telemetry.export import parse_openmetrics
        client = ServiceClient(api_service.url, tenant="metered")
        try:
            for seed in range(3):
                client.submit({"workload": "pi", "seed": seed})
            with pytest.raises(ServiceError):
                client.submit({"workload": "pi", "seed": 99})
            families = parse_openmetrics(client.metrics_text())
        finally:
            client.close()
        submitted = {
            labels.get("tenant"): value
            for _, labels, value
            in families["queue_jobs_submitted"]["samples"]}
        assert submitted["metered"] == 3
        assert families["queue_quota_rejections"]["samples"]
        active = {labels.get("tenant"): value for _, labels, value
                  in families["queue_tenant_active"]["samples"]}
        assert active["metered"] == 3

    def test_access_log_records_route_template(self, api_service):
        client = ServiceClient(api_service.url)
        try:
            job = client.submit({"workload": "pi"})
            client.job(job["id"])
        finally:
            client.close()
        access_log = api_service.observer.log_path("access.jsonl")
        # The access entry lands just after the response bytes do;
        # give the event loop a moment.
        import time as _time
        for _ in range(100):
            with open(access_log, "r", encoding="utf-8") as handle:
                entries = [json.loads(line) for line in handle]
            if any(e["route"] == "/v1/jobs/{id}" for e in entries):
                break
            _time.sleep(0.02)
        routes = [entry["route"] for entry in entries]
        # The matched template, not the raw path: cardinality stays
        # bounded no matter how many jobs exist.
        assert "/v1/jobs/{id}" in routes
        assert all(job["id"] not in route for route in routes)
        detail = [e for e in entries if e["route"] == "/v1/jobs/{id}"]
        assert detail[-1]["path"] == f"/v1/jobs/{job['id']}"
        assert detail[-1]["request_id"].startswith("req-")


class TestUsageAndDashboardEndpoints:
    def test_usage_empty_before_any_job_ran(self, api_service):
        client = ServiceClient(api_service.url)
        try:
            assert client.usage() == {}
        finally:
            client.close()

    def test_submit_records_request_id_on_the_job(self, api_service):
        client = ServiceClient(api_service.url)
        try:
            job = client.submit({"workload": "pi"})
        finally:
            client.close()
        assert job["request_id"] and job["request_id"].startswith(
            "req-")

    def test_dashboard_before_share_exists(self, api_service):
        client = ServiceClient(api_service.url)
        try:
            job = client.submit({"workload": "pi"})
            frame = client.dashboard(job["id"])
        finally:
            client.close()
        assert frame["job"]["id"] == job["id"]
        assert frame["text"] is None
        assert frame["alerts"] == []


class TestE2EObservability:
    @pytest.fixture(scope="class")
    def service(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("svc-obs")
        service = Service(str(root / "data")).start()
        yield service
        service.stop()

    @pytest.fixture(scope="class")
    def done_job(self, service):
        client = ServiceClient(service.url, tenant="e2e")
        job = client.submit({"workload": "pi", "scale": "tiny",
                             "experiments": 3, "seed": 11})
        final = client.wait(job["id"], timeout=180)
        client.close()
        assert final["state"] == "done"
        return final

    def test_usage_metered_per_tenant(self, service, done_job):
        client = ServiceClient(service.url)
        try:
            usage = client.usage()
        finally:
            client.close()
        assert usage["e2e"]["jobs"] >= 1
        assert usage["e2e"]["experiments"] >= 3
        assert usage["e2e"]["instructions"] > 0
        assert usage["e2e"]["wall_seconds"] > 0

    def test_usage_survives_queue_reopen(self, service, done_job):
        reopened = JobQueue(service.queue.path)
        usage = reopened.usage()
        assert usage["e2e"]["experiments"] >= 3

    def test_metrics_reflect_dispatch_and_store(self, service,
                                                done_job):
        from repro.telemetry.export import parse_openmetrics
        client = ServiceClient(service.url)
        try:
            families = parse_openmetrics(client.metrics_text())
        finally:
            client.close()
        executed = {labels.get("outcome"): value for _, labels, value
                    in families["jobs_executed"]["samples"]}
        assert executed.get("done", 0) >= 1
        assert families["job_phase_seconds"]["type"] == "histogram"
        phases = {labels.get("phase") for _, labels, _
                  in families["job_phase_seconds"]["samples"]}
        assert {"golden", "publish", "campaign", "collect",
                "report"} <= phases
        store_writes = sum(
            value for _, _, value
            in families["store_writes"]["samples"])
        assert store_writes >= 1
        usage_exp = {labels.get("tenant"): value
                     for _, labels, value
                     in families["usage_experiments"]["samples"]}
        assert usage_exp["e2e"] >= 3
        leases = sum(value for _, _, value
                     in families["queue_leases"]["samples"])
        assert leases >= 1

    def test_dashboard_endpoint_renders_share(self, service,
                                              done_job):
        client = ServiceClient(service.url)
        try:
            frame = client.dashboard(done_job["id"])
        finally:
            client.close()
        assert "experiments" in frame["text"]
        assert "3/3" in frame["text"]

    def test_traced_job_roots_at_the_request(self, service, capsys):
        from repro.cli import main
        from repro.telemetry import render_span_tree
        from repro.telemetry.spans import TraceContext, load_spans
        client = ServiceClient(service.url, tenant="traced")
        try:
            job = client.submit({"workload": "pi", "scale": "tiny",
                                 "experiments": 2, "seed": 17,
                                 "trace": True})
            job = client.wait(job["id"], timeout=180)
        finally:
            client.close()
        assert job["state"] == "done"
        share = job["share_dir"]
        finished, opened = load_spans(share)
        assert opened == []
        context = TraceContext(17)
        by_name = {}
        for record in finished:
            by_name.setdefault(record["name"], record)
        request = by_name["request"]
        assert request["span"] == context.span_id("/request")
        assert request["parent"] is None
        assert request["worker"] == "service"
        assert request["attrs"]["request_id"] == job["request_id"]
        assert request["attrs"]["job"] == job["id"]
        campaign = by_name["campaign"]
        # The campaign root hangs off the request span, but keeps the
        # id an unrooted run would compute — workers' id arithmetic
        # is untouched.
        assert campaign["span"] == context.span_id("/campaign")
        assert campaign["parent"] == context.span_id("/request")
        experiments = [r for r in finished
                       if r["name"].startswith("exp_")]
        assert experiments
        assert all(r["parent"] == context.span_id("/campaign")
                   for r in experiments)
        # gemfi timeline --tree renders the rooted tree.
        assert main(["timeline", share, "--tree"]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        assert lines[0].startswith("request ")
        assert lines[1].startswith("  campaign ")
        assert any(line.startswith("    exp_") for line in lines)

    def test_dashboard_cli_drives_from_the_service(self, service,
                                                   done_job, capsys):
        from repro.cli import main
        assert main(["dashboard", "--url", service.url,
                     "--job", done_job["id"], "--once"]) == 0
        out = capsys.readouterr().out
        assert done_job["id"] in out
        assert "experiments" in out

    def test_dashboard_cli_url_requires_job(self, capsys):
        from repro.cli import main
        assert main(["dashboard", "--url",
                     "http://127.0.0.1:1"]) == 2
        assert "--job" in capsys.readouterr().err


# -- response hygiene: content types, caching, 405 ----------------------------


class TestResponseHeaders:
    def test_json_carries_charset_and_no_store(self, api_service):
        conn = _http_conn(api_service)
        try:
            conn.request("GET", "/v1/healthz")
            response = conn.getresponse()
            response.read()
            assert response.getheader("Content-Type") \
                == "application/json; charset=utf-8"
            assert response.getheader("Cache-Control") == "no-store"
        finally:
            conn.close()

    def test_metrics_scrape_is_never_cached(self, api_service):
        conn = _http_conn(api_service)
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            response.read()
            assert "charset=utf-8" \
                in response.getheader("Content-Type")
            assert response.getheader("Cache-Control") == "no-store"
        finally:
            conn.close()

    def test_event_stream_content_type(self, api_service):
        client = ServiceClient(api_service.url)
        try:
            job = client.submit({"workload": "pi"})
            client.cancel(job["id"])
        finally:
            client.close()
        conn = _http_conn(api_service)
        try:
            conn.request("GET", f"/v1/jobs/{job['id']}/events")
            response = conn.getresponse()
            response.read()
            assert response.getheader("Content-Type") \
                == "application/jsonl; charset=utf-8"
            assert response.getheader("Transfer-Encoding") == "chunked"
            assert response.getheader("Cache-Control") == "no-store"
        finally:
            conn.close()

    def test_error_bodies_are_json_with_charset(self, api_service):
        conn = _http_conn(api_service)
        try:
            conn.request("GET", "/v1/jobs/job-nope")
            response = conn.getresponse()
            response.read()
            assert response.status == 404
            assert response.getheader("Content-Type") \
                == "application/json; charset=utf-8"
        finally:
            conn.close()

    def test_wrong_method_is_405_with_allow(self, api_service):
        conn = _http_conn(api_service)
        try:
            conn.request("DELETE", "/v1/healthz")
            response = conn.getresponse()
            body = json.loads(response.read())
            assert response.status == 405
            assert response.getheader("Allow") == "GET"
            assert "DELETE" in body["error"]
            # Both registered methods are advertised.
            conn.request("PUT", "/v1/jobs")
            response = conn.getresponse()
            response.read()
            assert response.status == 405
            assert response.getheader("Allow") == "GET, POST"
        finally:
            conn.close()

    def test_unknown_path_is_still_404(self, api_service):
        conn = _http_conn(api_service)
        try:
            conn.request("GET", "/v1/nope")
            response = conn.getresponse()
            response.read()
            assert response.status == 404
            assert response.getheader("Allow") is None
        finally:
            conn.close()


# -- client disconnect mid-stream ---------------------------------------------


def _wait_for_gauge(service, name, value, timeout=10.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if service.observer.snapshot().get(name) == value:
            return True
        time.sleep(0.02)
    return False


class TestStreamDisconnect:
    def test_disconnect_mid_events_stream_unwinds(self, api_service):
        """Closing the socket mid-stream must cancel the producer and
        return the in-flight/connection gauges to zero — no leaked
        stream task polling a queued job forever."""
        client = ServiceClient(api_service.url)
        try:
            job = client.submit({"workload": "pi"})
        finally:
            client.close()
        assert _wait_for_gauge(api_service,
                               "http.requests_in_flight", 0)
        conn = _http_conn(api_service)
        conn.request("GET",
                     f"/v1/jobs/{job['id']}/events?poll=0.05")
        response = conn.getresponse()
        assert response.status == 200
        first = response.read(10)
        assert first  # the stream is live...
        assert api_service.observer.snapshot()[
            "http.requests_in_flight"] == 1  # ...and accounted for
        conn.close()  # abrupt client disconnect; job still queued
        assert _wait_for_gauge(api_service,
                               "http.requests_in_flight", 0)
        assert _wait_for_gauge(api_service,
                               "http.connections_open", 0)

    def test_disconnect_finalises_the_generator(self, api_service):
        """The producer generator's ``finally`` runs on disconnect, so
        lease heartbeats / file handles owned by a stream are
        released deterministically."""
        finalised = threading.Event()

        async def endless(request):
            async def stream():
                try:
                    while True:
                        yield b'{"tick":1}\n'
                        await asyncio.sleep(0.02)
                finally:
                    finalised.set()

            return Response.streaming(stream())

        api_service.app.router.add("GET", "/endless", endless)
        conn = _http_conn(api_service)
        conn.request("GET", "/endless")
        response = conn.getresponse()
        assert response.read(8)
        conn.close()
        assert finalised.wait(timeout=10.0)
        assert _wait_for_gauge(api_service,
                               "http.requests_in_flight", 0)

    def test_clean_stream_end_also_finalises(self, api_service):
        client = ServiceClient(api_service.url)
        try:
            job = client.submit({"workload": "pi"})
            client.cancel(job["id"])
            frames = list(client.events(job["id"], poll=0.05))
        finally:
            client.close()
        assert frames[-1]["type"] == "end"
        assert _wait_for_gauge(api_service,
                               "http.requests_in_flight", 0)
