"""Campaign-as-a-service tests: store, queue, HTTP API, dispatch."""

import hashlib
import json
import os
import threading

import pytest

from repro.campaign import (
    CampaignRunner,
    SEUGenerator,
    SharedDirCampaign,
    backend_names,
    get_backend,
)
from repro.service import (
    ContentStore,
    Dispatcher,
    JobQueue,
    JobSpec,
    JobSpecError,
    LeaseError,
    QuotaExceeded,
    Service,
    ServiceClient,
    ServiceError,
    UnknownJobError,
    canonical_json_bytes,
    canonical_results,
    digest_bytes,
)
from repro.service.http import HTTPError, Request, Router
from repro.telemetry import PeriodicBeat
from repro.workloads import build


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# -- content store ------------------------------------------------------------


class TestContentStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ContentStore(str(tmp_path))
        digest = store.put_bytes(b"hello")
        assert digest == hashlib.sha256(b"hello").hexdigest()
        assert store.get(digest) == b"hello"
        assert store.has(digest)
        assert store.verify(digest)

    def test_put_is_idempotent_dedup(self, tmp_path):
        store = ContentStore(str(tmp_path))
        first = store.put_bytes(b"same bytes")
        second = store.put_bytes(b"same bytes")
        assert first == second
        assert store.stats() == {"objects": 1,
                                 "bytes": len(b"same bytes")}

    def test_canonical_json_is_order_insensitive(self, tmp_path):
        store = ContentStore(str(tmp_path))
        a = store.put_json({"b": 2, "a": 1})
        b = store.put_json({"a": 1, "b": 2})
        assert a == b
        assert store.get_json(a) == {"a": 1, "b": 2}

    def test_missing_object_raises_keyerror(self, tmp_path):
        store = ContentStore(str(tmp_path))
        with pytest.raises(KeyError):
            store.get("0" * 64)

    def test_malformed_digest_raises_valueerror(self, tmp_path):
        store = ContentStore(str(tmp_path))
        with pytest.raises(ValueError):
            store.get("../../etc/passwd")
        with pytest.raises(ValueError):
            store.path("abc")

    def test_stats_counts_objects_and_bytes(self, tmp_path):
        store = ContentStore(str(tmp_path))
        store.put_bytes(b"x" * 10)
        store.put_bytes(b"y" * 20)
        assert store.stats() == {"objects": 2, "bytes": 30}


# -- job specs ----------------------------------------------------------------


class TestJobSpec:
    def test_digest_is_stable_across_field_order(self):
        a = JobSpec.from_dict({"workload": "pi", "seed": 3})
        b = JobSpec.from_dict({"seed": 3, "workload": "pi"})
        assert a.digest() == b.digest()

    def test_digest_changes_with_seed(self):
        a = JobSpec.from_dict({"workload": "pi", "seed": 1})
        b = JobSpec.from_dict({"workload": "pi", "seed": 2})
        assert a.digest() != b.digest()

    @pytest.mark.parametrize("payload", [
        {},                                        # no workload
        {"workload": "nope"},                      # unknown workload
        {"workload": "pi", "scale": "galactic"},   # unknown scale
        {"workload": "pi", "experiments": 0},      # too few
        {"workload": "pi", "experiments": "ten"},  # wrong type
        {"workload": "pi", "seed": "zero"},        # wrong type
        {"workload": "pi", "location": "moon"},    # unknown location
        {"workload": "pi", "workers": -1},         # negative
        {"workload": "pi", "backend": "carrier-pigeon"},
        {"workload": "pi", "frobnicate": True},    # unknown field
    ])
    def test_invalid_specs_rejected(self, payload):
        with pytest.raises(JobSpecError):
            JobSpec.from_dict(payload)

    def test_canonical_results_strips_host_fields(self):
        results = [{"outcome": "sdc", "wall_seconds": 1.23,
                    "phases": {"run": 1.0}, "instructions": 42}]
        assert canonical_results(results) == [
            {"outcome": "sdc", "instructions": 42}]


# -- job queue ----------------------------------------------------------------


def _spec(seed=0, **kwargs):
    return JobSpec.from_dict({"workload": "pi", "experiments": 2,
                              "seed": seed, **kwargs})


class TestJobQueue:
    def test_submit_and_get(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"))
        job = queue.submit(_spec(), tenant="alice")
        assert job.state == "queued"
        assert queue.get(job.id).tenant == "alice"
        assert queue.depth() == 1
        with pytest.raises(UnknownJobError):
            queue.get("job-doesnotexist")

    def test_priority_ordering_then_fifo(self, tmp_path):
        clock = FakeClock()
        queue = JobQueue(str(tmp_path / "q.db"), clock=clock)
        low = queue.submit(_spec(seed=1), priority=0)
        clock.advance(1)
        high = queue.submit(_spec(seed=2), priority=5)
        clock.advance(1)
        low2 = queue.submit(_spec(seed=3), priority=0)
        order = [queue.lease("w").id for _ in range(3)]
        assert order == [high.id, low.id, low2.id]
        assert queue.lease("w") is None

    def test_quota_enforced_on_active_jobs(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"), default_quota=2)
        queue.submit(_spec(seed=1), tenant="alice")
        queue.submit(_spec(seed=2), tenant="alice")
        with pytest.raises(QuotaExceeded):
            queue.submit(_spec(seed=3), tenant="alice")
        # other tenants have their own budget
        queue.submit(_spec(seed=3), tenant="bob")

    def test_quota_frees_up_when_jobs_finish(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"), default_quota=1)
        first = queue.submit(_spec(seed=1), tenant="alice")
        leased = queue.lease("w")
        queue.complete(leased.id, owner="w",
                       result_digest="0" * 64)
        # done jobs no longer count against the quota
        queue.submit(_spec(seed=2), tenant="alice")
        assert queue.get(first.id).state == "done"

    def test_per_tenant_quota_override(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"), default_quota=1)
        queue.set_quota("vip", 3)
        for seed in range(3):
            queue.submit(_spec(seed=seed), tenant="vip")
        with pytest.raises(QuotaExceeded):
            queue.submit(_spec(seed=9), tenant="vip")

    def test_crash_recovery_requeues_expired_lease(self, tmp_path):
        clock = FakeClock()
        queue = JobQueue(str(tmp_path / "q.db"), clock=clock)
        job = queue.submit(_spec())
        leased = queue.lease("crashed-worker", lease_seconds=60)
        assert leased.id == job.id
        assert queue.lease("other") is None  # nothing left to lease
        clock.advance(61)
        assert queue.requeue_expired() == [job.id]
        recovered = queue.lease("other", lease_seconds=60)
        assert recovered.id == job.id
        assert recovered.attempts == 2  # both leases counted

    def test_lease_extension_prevents_requeue(self, tmp_path):
        clock = FakeClock()
        queue = JobQueue(str(tmp_path / "q.db"), clock=clock)
        job = queue.submit(_spec())
        queue.lease("w", lease_seconds=60)
        clock.advance(50)
        queue.extend_lease(job.id, "w", 60)
        clock.advance(50)  # past the original expiry, not the new one
        assert queue.requeue_expired() == []
        assert queue.get(job.id).state == "leased"

    def test_queue_survives_reopen(self, tmp_path):
        path = str(tmp_path / "q.db")
        job = JobQueue(path).submit(_spec(), tenant="alice",
                                    priority=7)
        reopened = JobQueue(path)  # a fresh process would do this
        restored = reopened.get(job.id)
        assert restored.state == "queued"
        assert restored.priority == 7
        assert restored.spec.as_dict() == _spec().as_dict()

    def test_complete_requires_the_lease(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"))
        job = queue.submit(_spec())
        with pytest.raises(LeaseError):
            queue.complete(job.id, owner="w")  # never leased
        queue.lease("w")
        with pytest.raises(LeaseError):
            queue.complete(job.id, owner="thief")
        queue.complete(job.id, owner="w", result_digest="0" * 64)
        assert queue.get(job.id).state == "done"

    def test_fail_with_retry_requeues(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"))
        job = queue.submit(_spec())
        queue.lease("w")
        queue.fail(job.id, error="boom", owner="w", retry=True)
        assert queue.get(job.id).state == "queued"
        queue.lease("w")
        queue.fail(job.id, error="boom again", owner="w")
        failed = queue.get(job.id)
        assert failed.state == "failed"
        assert "boom again" in failed.error

    def test_cancel_only_queued_jobs(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"))
        job = queue.submit(_spec())
        assert queue.cancel(job.id) is True
        assert queue.get(job.id).state == "cancelled"
        other = queue.submit(_spec(seed=1))
        queue.lease("w")
        assert queue.cancel(other.id) is False  # already leased

    def test_dedup_reuses_finished_identical_spec(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"))
        first = queue.submit(_spec())
        queue.lease("w")
        queue.complete(first.id, owner="w", result_digest="a" * 64,
                       report_digest="b" * 64)
        again = queue.submit(_spec())
        assert again.id != first.id
        assert again.state == "done"
        assert again.reused_from == first.id
        assert again.result_digest == "a" * 64
        # and dedup can be declined
        fresh = queue.submit(_spec(), reuse=False)
        assert fresh.state == "queued"

    def test_tenant_counts(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"))
        queue.submit(_spec(seed=1), tenant="alice")
        queue.submit(_spec(seed=2), tenant="alice")
        queue.submit(_spec(seed=3), tenant="bob")
        queue.lease("w")
        counts = queue.tenant_counts()
        assert counts["alice"] in ({"queued": 1, "leased": 1},
                                   {"queued": 2},)
        assert sum(counts["alice"].values()) == 2
        assert counts["bob"] == {"queued": 1}


# -- periodic beat ------------------------------------------------------------


class TestPeriodicBeat:
    def test_beats_and_joins_on_exit(self):
        before = threading.active_count()
        ticks = []
        with PeriodicBeat(0.01, lambda: ticks.append(1)) as beat:
            assert beat.alive
            deadline = threading.Event()
            deadline.wait(0.08)
        assert not beat.alive
        assert ticks  # it beat at least once
        assert threading.active_count() == before  # joined, not leaked

    def test_nonpositive_interval_never_starts_a_thread(self):
        before = threading.active_count()
        with PeriodicBeat(0.0, lambda: 1 / 0) as beat:
            assert not beat.alive
        assert threading.active_count() == before

    def test_no_thread_accumulation_across_many_uses(self):
        before = threading.active_count()
        for _ in range(10):
            with PeriodicBeat(0.01, lambda: None):
                pass
        assert threading.active_count() == before


# -- HTTP plumbing ------------------------------------------------------------


class TestRouter:
    def _router(self):
        async def handler(request):
            return request
        router = Router()
        router.add("GET", "/v1/jobs/{id}/status", handler)
        router.add("GET", "/v1/jobs", handler)
        router.add("POST", "/v1/jobs", handler)
        return router

    def test_template_binds_params(self):
        router = self._router()
        _, params = router.match("GET", "/v1/jobs/job-abc/status")
        assert params == {"id": "job-abc"}

    def test_unknown_path_is_404(self):
        with pytest.raises(HTTPError) as err:
            self._router().match("GET", "/nope")
        assert err.value.status == 404

    def test_wrong_method_is_405(self):
        with pytest.raises(HTTPError) as err:
            self._router().match("DELETE", "/v1/jobs")
        assert err.value.status == 405

    def test_request_json_rejects_garbage(self):
        request = Request(method="POST", path="/", body=b"not json")
        with pytest.raises(HTTPError) as err:
            request.json()
        assert err.value.status == 400


# -- the API over a live server -----------------------------------------------


@pytest.fixture
def api_service(tmp_path):
    """HTTP API only — no dispatcher thread; tests drive dispatch."""
    service = Service(str(tmp_path / "data"), default_quota=3)
    service.start_http()
    yield service
    service.stop()


class TestServiceApi:
    def test_healthz(self, api_service):
        client = ServiceClient(api_service.url)
        health = client.healthz()
        assert health["ok"] is True
        assert health["queue_depth"] == 0

    def test_submit_validates_and_lists(self, api_service):
        client = ServiceClient(api_service.url, tenant="alice")
        job = client.submit({"workload": "pi", "experiments": 2})
        assert job["state"] == "queued"
        assert job["tenant"] == "alice"
        listing = client.jobs(tenant="alice")
        assert [j["id"] for j in listing["jobs"]] == [job["id"]]
        assert listing["tenants"]["alice"] == {"queued": 1}

    def test_submit_bad_spec_is_400(self, api_service):
        client = ServiceClient(api_service.url)
        with pytest.raises(ServiceError) as err:
            client.submit({"workload": "nope"})
        assert err.value.status == 400
        assert "unknown workload" in err.value.message

    def test_quota_exhaustion_is_429(self, api_service):
        client = ServiceClient(api_service.url, tenant="greedy")
        for seed in range(3):
            client.submit({"workload": "pi", "seed": seed})
        with pytest.raises(ServiceError) as err:
            client.submit({"workload": "pi", "seed": 99})
        assert err.value.status == 429

    def test_unknown_job_is_404(self, api_service):
        client = ServiceClient(api_service.url)
        with pytest.raises(ServiceError) as err:
            client.job("job-missing")
        assert err.value.status == 404

    def test_cancel_queued_then_conflict(self, api_service):
        client = ServiceClient(api_service.url)
        job = client.submit({"workload": "pi"})
        cancelled = client.cancel(job["id"])
        assert cancelled["state"] == "cancelled"
        with pytest.raises(ServiceError) as err:
            client.cancel(job["id"])  # already terminal
        assert err.value.status == 409

    def test_results_missing_is_404(self, api_service):
        client = ServiceClient(api_service.url)
        job = client.submit({"workload": "pi"})
        with pytest.raises(ServiceError) as err:
            client.results(job["id"])
        assert err.value.status == 404

    def test_blob_validation(self, api_service):
        client = ServiceClient(api_service.url)
        with pytest.raises(ServiceError) as err:
            client.fetch("zz")
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            client.fetch("0" * 64)
        assert err.value.status == 404

    def test_events_stream_ends_on_terminal_job(self, api_service):
        client = ServiceClient(api_service.url)
        job = client.submit({"workload": "pi"})
        client.cancel(job["id"])
        frames = list(client.events(job["id"], poll=0.05))
        assert [f["type"] for f in frames] == ["status", "end"]
        assert frames[-1]["state"] == "cancelled"


# -- dispatch + end-to-end ----------------------------------------------------


class TestDispatcherAndE2E:
    @pytest.fixture(scope="class")
    def service(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("svc")
        service = Service(str(root / "data")).start()
        yield service
        service.stop()

    @pytest.fixture(scope="class")
    def done_job(self, service):
        client = ServiceClient(service.url, tenant="e2e")
        job = client.submit({"workload": "pi", "scale": "tiny",
                             "experiments": 3, "seed": 11})
        return client.wait(job["id"], timeout=180)

    def test_job_completes_with_digests(self, done_job):
        assert done_job["state"] == "done"
        assert done_job["error"] is None
        assert done_job["result_digest"]
        assert done_job["report_digest"]
        assert done_job["checkpoint_digest"]

    def test_results_digest_round_trip(self, service, done_job):
        client = ServiceClient(service.url)
        blob = client.fetch(done_job["result_digest"])
        assert hashlib.sha256(blob).hexdigest() \
            == done_job["result_digest"]
        results = json.loads(blob)
        assert len(results) == 3
        assert all("wall_seconds" not in entry for entry in results)

    def test_service_results_match_direct_campaign(
            self, service, done_job, tmp_path):
        """The acceptance bar: the service's stored result set is
        byte-identical to a direct SharedDirCampaign run of the same
        spec and seed on this machine."""
        runner = CampaignRunner(build("pi", "tiny"))
        campaign = SharedDirCampaign(str(tmp_path / "share"),
                                     "pi", "tiny")
        faults = SEUGenerator(runner.golden.profile,
                              seed=11).batch(3)
        campaign.publish(runner, faults, seed=11)
        campaign.worker_loop("direct", runner)
        direct = canonical_json_bytes(
            canonical_results(campaign.collect()))
        served = ServiceClient(service.url).fetch(
            done_job["result_digest"])
        assert served == direct
        assert digest_bytes(direct) == done_job["result_digest"]

    def test_resubmit_same_spec_reuses_result(self, service,
                                              done_job):
        client = ServiceClient(service.url, tenant="e2e")
        again = client.submit({"workload": "pi", "scale": "tiny",
                               "experiments": 3, "seed": 11})
        assert again["state"] == "done"
        assert again["reused_from"] == done_job["id"]
        assert again["result_digest"] == done_job["result_digest"]

    def test_same_seed_rerun_lands_on_same_digest(self, service,
                                                  done_job):
        """Digest stability: forcing a full re-run (reuse=False) of
        the same seed must produce the same content address, and the
        store keeps a single deduplicated object."""
        client = ServiceClient(service.url, tenant="e2e")
        before = client.store_stats()["objects"]
        job = client.submit({"workload": "pi", "scale": "tiny",
                             "experiments": 3, "seed": 11},
                            reuse=False)
        assert job["state"] != "done" or not job["reused_from"]
        final = client.wait(job["id"], timeout=180)
        assert final["state"] == "done"
        assert final["result_digest"] == done_job["result_digest"]
        # results + checkpoint dedupe; only the report (which names
        # its per-job share directory) is a new object
        assert client.store_stats()["objects"] <= before + 1
        assert final["checkpoint_digest"] \
            == done_job["checkpoint_digest"]

    def test_job_status_exposes_campaign_share(self, service,
                                               done_job):
        client = ServiceClient(service.url)
        status = client.status(done_job["id"])
        assert status["job"]["state"] == "done"
        assert status["campaign"]["completed"] == 3
        assert status["campaign"]["service"]["job"] == done_job["id"]

    def test_report_renders(self, service, done_job):
        client = ServiceClient(service.url)
        report = client.report(done_job["id"])
        assert "Campaign report" in report
        html = client.report(done_job["id"], fmt="html")
        assert html.lstrip().startswith("<")

    def test_failed_job_records_error(self, tmp_path):
        """A job whose campaign collapses must land in 'failed' with
        the cause, not wedge the dispatcher."""
        queue = JobQueue(str(tmp_path / "q.db"))
        store = ContentStore(str(tmp_path / "store"))
        dispatcher = Dispatcher(queue, store, str(tmp_path),
                                lease_seconds=60)

        spec = JobSpec.from_dict({"workload": "pi",
                                  "experiments": 2})
        job = queue.submit(spec)

        def exploding(job):
            raise RuntimeError("simulated worker loss")
        dispatcher.run_job = exploding
        assert dispatcher.poll_once() is True
        failed = queue.get(job.id)
        assert failed.state == "failed"
        assert "simulated worker loss" in failed.error

    def test_backend_registry_resolves_shared_dir(self):
        assert "shared-dir" in backend_names()
        assert get_backend("shared-dir") is SharedDirCampaign
        with pytest.raises(KeyError):
            get_backend("carrier-pigeon")

    def test_dispatcher_marks_share_for_status(self, service,
                                               done_job):
        """gemfi status on a service-run share names its job/tenant
        and live queue numbers (the service.json marker)."""
        from repro.telemetry import read_status
        share = ServiceClient(service.url).job(
            done_job["id"])["share_dir"]
        assert os.path.isfile(os.path.join(share, "service.json"))
        status = read_status(share)
        assert status.service["job"] == done_job["id"]
        assert status.service["tenant"] == "e2e"
        assert "queue_depth" in status.service
        assert "e2e" in status.service["tenants"]
