"""End-to-end campaign integration across every paper workload."""

import pytest

from repro.campaign import CampaignRunner, Outcome, SEUGenerator, summary
from repro.core import parse_fault_line
from repro.workloads import WORKLOAD_NAMES, build


@pytest.fixture(scope="module")
def runners():
    return {name: CampaignRunner(build(name, "tiny"))
            for name in WORKLOAD_NAMES}


class TestEveryWorkloadCampaign:
    def test_golden_artifacts_complete(self, runners):
        for name, runner in runners.items():
            golden = runner.golden
            assert golden.checkpoint is not None, name
            assert golden.profile.committed > 500, name
            assert golden.boot_instructions > 1000, name
            assert golden.outputs.arrays or golden.outputs.console, name

    def test_small_mixed_campaign_classifies(self, runners):
        for name, runner in runners.items():
            generator = SEUGenerator(runner.golden.profile,
                                     seed=500 + len(name))
            results = runner.run_campaign(generator.batch(6))
            dist = summary(results)
            assert dist.total == 6, name
            # Every outcome must be one of the five classes.
            assert set(dist.counts) <= set(Outcome), name

    def test_pc_fault_fatal_everywhere(self, runners):
        for name, runner in runners.items():
            half = runner.golden.profile.committed // 2
            fault = parse_fault_line(
                f"PCInjectedFault Inst:{half} Flip:40 Threadid:0 "
                "system.cpu0 occ:1")
            result = runner.run_experiment(fault)
            assert result.outcome is Outcome.CRASHED, \
                f"{name}: high-bit PC flip must be fatal"

    def test_fp_fault_harmless_in_integer_apps(self, runners):
        for name in ("deblocking", "knapsack", "canneal"):
            runner = runners[name]
            half = runner.golden.profile.committed // 2
            fault = parse_fault_line(
                f"RegisterInjectedFault Inst:{half} Flip:30 Threadid:0 "
                "system.cpu0 occ:1 fp 5")
            result = runner.run_experiment(fault)
            assert result.outcome in (Outcome.NON_PROPAGATED,
                                      Outcome.STRICTLY_CORRECT), \
                f"{name}: FP fault in an integer-only kernel must mask"

    def test_fault_after_window_is_non_propagated(self, runners):
        for name, runner in runners.items():
            fault = parse_fault_line(
                "ExecutionStageInjectedFault Inst:999999999 Flip:0 "
                "Threadid:0 system.cpu0 occ:1")
            result = runner.run_experiment(fault)
            assert result.outcome is Outcome.NON_PROPAGATED, name
            assert not result.injected, name

    def test_checkpoint_reuse_across_experiments(self, runners):
        """One checkpoint, many experiments — each starts from the same
        state (deterministic outcome for a deterministic fault)."""
        runner = runners["jacobi"]
        fault = parse_fault_line(
            "ExecutionStageInjectedFault Inst:123 Flip:3 Threadid:0 "
            "system.cpu0 occ:1")
        outcomes = {runner.run_experiment(fault).outcome
                    for _ in range(3)}
        assert len(outcomes) == 1
