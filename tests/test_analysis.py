"""Liveness analysis & campaign pruning tests (repro.analysis)."""

import pytest

from repro.analysis import (
    DefUseTracer,
    LIVE,
    LivenessAnalysis,
    MASKED_BIT_OUT_OF_RANGE,
    MASKED_DEAD_DESTINATION,
    MASKED_DEAD_REGISTER,
    MASKED_DEAD_RESULT,
    MASKED_DISCARDED_WRITE,
    MASKED_EQUAL_VALUE_SOURCE,
    MASKED_NEVER_TRIGGERS,
    MASKED_NO_OPERAND_FIELDS,
    MASKED_OVERWRITTEN_REGISTER,
    MASKED_OVERWRITTEN_RESULT,
    MASKED_OVERWRITTEN_STORE,
    MASKED_ZERO_REGISTER,
    SiteVerdict,
    TraceEvent,
    build_classes,
)
from repro.campaign import (
    CampaignRunner,
    ExperimentResult,
    Outcome,
    PlannedRun,
    PredictedSite,
    PrunedPlan,
    SEUGenerator,
    by_location,
    expand_pruned,
    kish_effective_sample_size,
    proportion_confidence_interval,
    summary,
    weighted_proportion_confidence_interval,
)
from repro.compiler import compile_source
from repro.core import FaultInjector
from repro.core.fault import (
    Behavior,
    BehaviorKind,
    Fault,
    LocationKind,
    TimeMode,
)
from repro.isa.encoding import encode_operate, encode_palcode
from repro.isa.instructions import KIND_ALU, KIND_LOAD, KIND_STORE
from repro.sim import SimConfig, Simulator
from repro.workloads import build


# -- helpers ----------------------------------------------------------------------

# Only used where the classifier never decodes the word.
NOP_WORD = 0x47FF041F
# addq r1, r2, r3 (operate format: ra=[25:21], rb=[20:16], rc=[4:0]).
ADDQ_1_2_3 = encode_operate(0x10, 1, 2, 0x20, 3)
CALLSYS_WORD = encode_palcode(0x00, 0x83)


def seu(location, time, bit, reg_index=0, operand_role="src",
        operand_index=0):
    return Fault(location=location, time_mode=TimeMode.INSTRUCTIONS,
                 time=time,
                 behavior=Behavior(kind=BehaviorKind.FLIP, bits=(bit,),
                                   occ=1),
                 reg_index=reg_index, operand_role=operand_role,
                 operand_index=operand_index)


def ev(widx, kind=KIND_ALU, reads=(), writes=(), values=None,
       word=NOP_WORD, mem_addr=None, mem_size=8, is_load=False,
       is_syscall=False):
    writes = tuple(writes)
    if values is None:
        values = tuple(0 for _ in writes)
    return TraceEvent(window_index=widx, pc=0x1000, word=word, kind=kind,
                      reads=tuple(reads), writes=writes,
                      mem_addr=mem_addr, mem_size=mem_size,
                      is_load=is_load, is_syscall=is_syscall,
                      write_values=tuple(values))


def analysis_of(events, initial=None, context_switches=0):
    tracer = DefUseTracer()
    tracer.events = list(events)
    tracer.started = True
    tracer.initial_regs = {} if initial is None else dict(initial)
    tracer.context_switches = context_switches
    return LivenessAnalysis(tracer)


# -- synthetic-trace classification -----------------------------------------------


class TestRegisterLiveness:
    def test_dead_register(self):
        analysis = analysis_of([ev(1, writes=[("int", 5)])])
        verdict = analysis.classify(
            seu(LocationKind.INT_REG, 1, 3, reg_index=5))
        assert verdict.masked
        assert verdict.reason == MASKED_DEAD_REGISTER
        assert verdict.injected

    def test_overwritten_register(self):
        analysis = analysis_of([ev(1, writes=[("int", 5)]),
                                ev(2, writes=[("int", 5)])])
        verdict = analysis.classify(
            seu(LocationKind.INT_REG, 1, 3, reg_index=5))
        assert verdict.reason == MASKED_OVERWRITTEN_REGISTER

    def test_read_before_overwrite_is_live(self):
        analysis = analysis_of([ev(1, writes=[("int", 5)]),
                                ev(2, reads=[("int", 5)],
                                   writes=[("int", 5)])])
        verdict = analysis.classify(
            seu(LocationKind.INT_REG, 1, 3, reg_index=5))
        assert verdict.live
        assert verdict.class_key == ("reg", "int", 5, 3, 1)

    def test_same_first_read_shares_class_key(self):
        events = [ev(1, writes=[("int", 5)]), ev(2, writes=[("int", 6)]),
                  ev(3, reads=[("int", 5)])]
        analysis = analysis_of(events)
        v1 = analysis.classify(seu(LocationKind.INT_REG, 1, 9,
                                   reg_index=5))
        v2 = analysis.classify(seu(LocationKind.INT_REG, 2, 9,
                                   reg_index=5))
        assert v1.live and v2.live
        assert v1.class_key == v2.class_key
        # Different bit => different downstream state => different class.
        v3 = analysis.classify(seu(LocationKind.INT_REG, 1, 8,
                                   reg_index=5))
        assert v3.class_key != v1.class_key

    def test_zero_register_masked_with_propagation_prediction(self):
        read_after = analysis_of([ev(1, writes=[("int", 5)]),
                                  ev(2, reads=[("int", 31)])])
        verdict = read_after.classify(
            seu(LocationKind.INT_REG, 1, 0, reg_index=31))
        assert verdict.reason == MASKED_ZERO_REGISTER
        assert verdict.propagated
        never_read = analysis_of([ev(1, writes=[("int", 5)])])
        verdict = never_read.classify(
            seu(LocationKind.INT_REG, 1, 0, reg_index=31))
        assert verdict.reason == MASKED_ZERO_REGISTER
        assert not verdict.propagated

    def test_exit_barrier_keeps_exit_code_registers_live(self):
        # v0/a0 feed the final exit() syscall, which never commits.
        for reg in (0, 16):
            analysis = analysis_of([ev(1, writes=[("int", reg)])])
            verdict = analysis.classify(
                seu(LocationKind.INT_REG, 1, 2, reg_index=reg))
            assert verdict.live, f"r{reg} must stay live"
        # a1 is loaded by the dispatcher but discarded by exit.
        analysis = analysis_of([ev(1, writes=[("int", 17)])])
        verdict = analysis.classify(
            seu(LocationKind.INT_REG, 1, 2, reg_index=17))
        assert verdict.reason == MASKED_DEAD_REGISTER

    def test_never_triggers_beyond_window(self):
        analysis = analysis_of([ev(1, writes=[("int", 5)])])
        verdict = analysis.classify(
            seu(LocationKind.INT_REG, 3, 0, reg_index=5))
        assert verdict.reason == MASKED_NEVER_TRIGGERS
        assert not verdict.injected

    def test_bit_out_of_range(self):
        analysis = analysis_of([ev(1, writes=[("int", 5)]),
                                ev(2, reads=[("int", 5)])])
        verdict = analysis.classify(
            seu(LocationKind.INT_REG, 1, 64, reg_index=5))
        assert verdict.reason == MASKED_BIT_OUT_OF_RANGE

    def test_tainted_trace_refuses_to_prune(self):
        analysis = analysis_of([ev(1, writes=[("int", 5)])],
                               context_switches=1)
        verdict = analysis.classify(
            seu(LocationKind.INT_REG, 1, 3, reg_index=5))
        assert verdict.live

    def test_non_seu_shapes_stay_live(self):
        analysis = analysis_of([ev(1, writes=[("int", 5)])])
        fault = seu(LocationKind.INT_REG, 1, 3, reg_index=5)
        multi_bit = Fault(
            location=fault.location, time_mode=fault.time_mode,
            time=fault.time,
            behavior=Behavior(kind=BehaviorKind.FLIP, bits=(1, 2), occ=1),
            reg_index=5)
        assert analysis.classify(multi_bit).live
        # PC faults always redirect control flow: live.
        assert analysis.classify(seu(LocationKind.PC, 1, 3)).live


class TestExecuteAndMemLiveness:
    def test_execute_dead_result(self):
        analysis = analysis_of([ev(1, writes=[("int", 5)], values=(7,))])
        verdict = analysis.classify(seu(LocationKind.EXECUTE, 1, 0))
        assert verdict.reason == MASKED_DEAD_RESULT
        assert verdict.propagated

    def test_execute_overwritten_result(self):
        analysis = analysis_of([ev(1, writes=[("int", 5)]),
                                ev(2, writes=[("int", 5)])])
        verdict = analysis.classify(seu(LocationKind.EXECUTE, 1, 0))
        assert verdict.reason == MASKED_OVERWRITTEN_RESULT

    def test_execute_discarded_write(self):
        analysis = analysis_of([ev(1, writes=[("int", 31)])])
        verdict = analysis.classify(seu(LocationKind.EXECUTE, 1, 0))
        assert verdict.reason == MASKED_DISCARDED_WRITE

    def test_execute_address_corruption_is_live(self):
        # Effective-address flips on a load are never provably masked.
        analysis = analysis_of([ev(1, KIND_LOAD, writes=[("int", 5)],
                                   mem_addr=0x100, is_load=True)])
        verdict = analysis.classify(seu(LocationKind.EXECUTE, 1, 0))
        assert verdict.live
        assert verdict.class_key is not None

    def test_store_byte_overwritten_before_any_read(self):
        analysis = analysis_of([
            ev(1, KIND_STORE, mem_addr=0x200),
            ev(2, KIND_STORE, mem_addr=0x200)])
        verdict = analysis.classify(seu(LocationKind.MEM, 1, 0))
        assert verdict.reason == MASKED_OVERWRITTEN_STORE

    def test_intervening_load_keeps_store_live(self):
        analysis = analysis_of([
            ev(1, KIND_STORE, mem_addr=0x200),
            ev(2, KIND_LOAD, writes=[("int", 5)], mem_addr=0x200,
               is_load=True),
            ev(3, KIND_STORE, mem_addr=0x200)])
        verdict = analysis.classify(seu(LocationKind.MEM, 1, 0))
        assert verdict.live

    def test_syscall_is_a_memory_read_barrier(self):
        analysis = analysis_of([
            ev(1, KIND_STORE, mem_addr=0x200),
            ev(None, is_syscall=True),
            ev(2, KIND_STORE, mem_addr=0x200)])
        verdict = analysis.classify(seu(LocationKind.MEM, 1, 0))
        assert verdict.live

    def test_final_memory_stays_live(self):
        # Campaign outputs are extracted from final memory, so a store
        # that is never touched again is NOT dead.
        analysis = analysis_of([ev(1, KIND_STORE, mem_addr=0x200)])
        assert analysis.classify(seu(LocationKind.MEM, 1, 0)).live

    def test_store_bit_beyond_access_width(self):
        analysis = analysis_of([ev(1, KIND_STORE, mem_addr=0x200,
                                   mem_size=4)])
        verdict = analysis.classify(seu(LocationKind.MEM, 1, 40))
        assert verdict.reason == MASKED_BIT_OUT_OF_RANGE

    def test_load_value_into_dead_register(self):
        analysis = analysis_of([ev(1, KIND_LOAD, writes=[("int", 7)],
                                   mem_addr=0x100, is_load=True)])
        verdict = analysis.classify(seu(LocationKind.MEM, 1, 0))
        assert verdict.reason == MASKED_DEAD_RESULT
        assert verdict.propagated


class TestFetchDecodeLiveness:
    def test_decode_src_redirect_to_equal_valued_register(self):
        # addq r1, r2 -> r3 with r1 == r5: flipping bit 2 of the ra
        # selection redirects r1 -> r5 and reads the same value.
        events = [ev(1, word=ADDQ_1_2_3,
                     reads=[("int", 1), ("int", 2)],
                     writes=[("int", 3)], values=(49,)),
                  ev(2, reads=[("int", 3)], writes=[("int", 4)])]
        initial = {("int", 1): 42, ("int", 5): 42, ("int", 2): 7}
        analysis = analysis_of(events, initial=initial)
        verdict = analysis.classify(
            seu(LocationKind.DECODE, 1, 2, operand_role="src",
                operand_index=0))
        assert verdict.reason == MASKED_EQUAL_VALUE_SOURCE
        assert verdict.propagated
        # Different values: the redirect changes an operand -> live.
        analysis = analysis_of(events,
                               initial={("int", 1): 42, ("int", 5): 43,
                                        ("int", 2): 7})
        verdict = analysis.classify(
            seu(LocationKind.DECODE, 1, 2, operand_role="src",
                operand_index=0))
        assert verdict.live

    def test_equal_value_rule_disabled_without_values(self):
        # A trace recorded without register values must never use it.
        events = [ev(1, word=ADDQ_1_2_3, reads=[("int", 1), ("int", 2)],
                     writes=[("int", 3)], values=(49,)),
                  ev(2, reads=[("int", 3)])]
        tracer = DefUseTracer()
        tracer.events = events
        tracer.started = True
        tracer.initial_regs = None     # no initial snapshot
        analysis = LivenessAnalysis(tracer)
        verdict = analysis.classify(
            seu(LocationKind.DECODE, 1, 2, operand_role="src",
                operand_index=0))
        assert verdict.live

    def test_decode_dst_redirect_between_dead_registers(self):
        # addq r1, r2 -> r3, r3 never read again; bit 1 redirects the
        # write to r1, whose next access is a write.
        events = [ev(1, word=ADDQ_1_2_3,
                     reads=[("int", 1), ("int", 2)],
                     writes=[("int", 3)]),
                  ev(2, writes=[("int", 1)])]
        analysis = analysis_of(events)
        verdict = analysis.classify(
            seu(LocationKind.DECODE, 1, 1, operand_role="dst",
                operand_index=0))
        assert verdict.reason == MASKED_DEAD_DESTINATION
        assert verdict.propagated
        # If the stale value in r3 would be read, the site is live.
        live_events = [ev(1, word=ADDQ_1_2_3, writes=[("int", 3)]),
                       ev(2, reads=[("int", 3)]),
                       ev(3, writes=[("int", 1)])]
        analysis = analysis_of(live_events)
        assert analysis.classify(
            seu(LocationKind.DECODE, 1, 1, operand_role="dst",
                operand_index=0)).live

    def test_decode_fault_without_operand_fields(self):
        analysis = analysis_of([ev(1, word=CALLSYS_WORD)])
        verdict = analysis.classify(
            seu(LocationKind.DECODE, 1, 0, operand_role="src"))
        assert verdict.reason == MASKED_NO_OPERAND_FIELDS

    def test_fetch_flip_moving_source_field_to_equal_value(self):
        # ra occupies word bits [25:21]; flipping bit 23 turns r1
        # into r5 (1 ^ 4).
        events = [ev(1, word=ADDQ_1_2_3, writes=[("int", 3)]),
                  ev(2, reads=[("int", 3)])]
        analysis = analysis_of(events,
                               initial={("int", 1): 9, ("int", 5): 9,
                                        ("int", 2): 1})
        verdict = analysis.classify(seu(LocationKind.FETCH, 1, 23))
        assert verdict.reason == MASKED_EQUAL_VALUE_SOURCE
        assert verdict.propagated

    def test_fetch_flip_moving_dead_destination_field(self):
        # rc occupies word bits [4:0]; flipping bit 2 turns the r3
        # destination into r7.  Neither r3 nor r7 is read afterwards.
        events = [ev(1, word=ADDQ_1_2_3, writes=[("int", 3)])]
        analysis = analysis_of(events)
        verdict = analysis.classify(seu(LocationKind.FETCH, 1, 2))
        assert verdict.reason == MASKED_DEAD_DESTINATION
        # A later read of the redirected-to register keeps it live.
        live = analysis_of([ev(1, word=ADDQ_1_2_3, writes=[("int", 3)]),
                            ev(2, reads=[("int", 7)])])
        assert live.classify(seu(LocationKind.FETCH, 1, 2)).live


# -- equivalence classes ----------------------------------------------------------


class TestEquivalenceClasses:
    def test_groups_by_key_with_first_member_representative(self):
        f1 = seu(LocationKind.INT_REG, 1, 3, reg_index=5)
        f2 = seu(LocationKind.INT_REG, 2, 3, reg_index=5)
        f3 = seu(LocationKind.EXECUTE, 4, 1)
        key = ("reg", "int", 5, 3, 10)
        pairs = [(f1, SiteVerdict(False, LIVE, class_key=key)),
                 (f3, SiteVerdict(False, LIVE, class_key=None)),
                 (f2, SiteVerdict(False, LIVE, class_key=key))]
        classes = build_classes(pairs)
        assert len(classes) == 2
        assert classes[0].representative is f1
        assert classes[0].members == [f1, f2]
        assert classes[0].weight == 2
        assert classes[1].members == [f3]

    def test_keyless_sites_stay_singletons(self):
        faults = [seu(LocationKind.PC, t, 0) for t in (1, 2, 3)]
        pairs = [(f, SiteVerdict(False, LIVE)) for f in faults]
        classes = build_classes(pairs)
        assert len(classes) == 3
        assert all(cls.weight == 1 for cls in classes)

    def test_masked_sites_are_rejected(self):
        fault = seu(LocationKind.INT_REG, 1, 0, reg_index=5)
        with pytest.raises(ValueError):
            build_classes([(fault,
                            SiteVerdict(True, MASKED_DEAD_REGISTER))])


# -- weighted estimator expansion (unit) ------------------------------------------


def _result(fault, outcome):
    return ExperimentResult(
        fault=fault, outcome=outcome, injected=True, propagated=True,
        crash_reason=None, instructions=10, ticks=10, wall_seconds=0.0,
        console="", time_fraction=0.5)


class TestExpandPruned:
    def _plan(self):
        f1 = seu(LocationKind.INT_REG, 1, 3, reg_index=5)
        f2 = seu(LocationKind.INT_REG, 2, 3, reg_index=5)
        f3 = seu(LocationKind.PC, 3, 0)
        masked = seu(LocationKind.INT_REG, 4, 0, reg_index=6)
        silent = seu(LocationKind.INT_REG, 9, 0, reg_index=7)
        return PrunedPlan(
            runs=[PlannedRun(fault=f1, members=[f1, f2]),
                  PlannedRun(fault=f3, members=[f3])],
            predicted=[
                PredictedSite(fault=masked, reason=MASKED_ZERO_REGISTER,
                              propagated=True, injected=True),
                PredictedSite(fault=silent,
                              reason=MASKED_NEVER_TRIGGERS,
                              propagated=False, injected=False)],
            total=5)

    def test_plan_accounting(self):
        plan = self._plan()
        assert plan.experiments == 2
        assert plan.masked_count == 2
        assert plan.collapsed == 1
        assert plan.saved == 3
        assert plan.fraction_saved == pytest.approx(0.6)
        assert plan.reason_counts() == {MASKED_ZERO_REGISTER: 1,
                                        MASKED_NEVER_TRIGGERS: 1}
        assert plan.weights() == [2.0, 1.0]

    def test_weighted_and_per_member_agree(self):
        plan = self._plan()
        run_results = [_result(plan.runs[0].fault, Outcome.SDC),
                       _result(plan.runs[1].fault, Outcome.CRASHED)]
        weighted = expand_pruned(plan, run_results, window=10)
        per_member = expand_pruned(plan, run_results, window=10,
                                   per_member=True)
        assert summary(weighted).total == plan.total
        assert summary(per_member).total == plan.total
        assert summary(weighted).counts == summary(per_member).counts
        assert summary(weighted).counts[Outcome.SDC] == 2
        assert summary(weighted).counts[Outcome.CRASHED] == 1

    def test_predicted_sites_synthesised_for_free(self):
        plan = self._plan()
        run_results = [_result(plan.runs[0].fault, Outcome.SDC),
                       _result(plan.runs[1].fault, Outcome.CRASHED)]
        expanded = expand_pruned(plan, run_results, window=10)
        predicted = [r for r in expanded if r.predicted]
        assert len(predicted) == 2
        by_outcome = {r.outcome for r in predicted}
        # propagated -> strictly correct, silent -> non-propagated.
        assert by_outcome == {Outcome.STRICTLY_CORRECT,
                              Outcome.NON_PROPAGATED}
        assert all(r.instructions == 0 for r in predicted)


class TestWeightedSampling:
    def test_kish_equal_weights_is_sample_size(self):
        assert kish_effective_sample_size([1.0] * 50) \
            == pytest.approx(50.0)

    def test_kish_unequal_weights_shrink_effective_n(self):
        n_eff = kish_effective_sample_size([1.0, 1.0, 2.0])
        assert n_eff == pytest.approx(16.0 / 6.0)
        assert n_eff < 3.0

    def test_kish_edge_cases(self):
        assert kish_effective_sample_size([]) == 0.0
        assert kish_effective_sample_size([0.0, -1.0]) == 0.0
        assert kish_effective_sample_size([2.0, 0.0]) == 1.0

    def test_weighted_interval_reduces_to_wilson(self):
        low, high = weighted_proportion_confidence_interval(
            30.0, 100.0, 100.0)
        ref_low, ref_high = proportion_confidence_interval(30, 100)
        assert low == pytest.approx(ref_low)
        assert high == pytest.approx(ref_high)

    def test_weighted_interval_widens_as_n_eff_drops(self):
        narrow = weighted_proportion_confidence_interval(30.0, 100.0,
                                                         100.0)
        wide = weighted_proportion_confidence_interval(30.0, 100.0, 25.0)
        assert wide[0] < narrow[0]
        assert wide[1] > narrow[1]

    def test_weighted_interval_degenerate_inputs(self):
        assert weighted_proportion_confidence_interval(0, 0, 0) \
            == (0.0, 1.0)


# -- tracer integration (real runs) -----------------------------------------------


TRACED_PROGRAM = """
A = iarray(4)

def main():
    fi_read_init_all()
    x = 3
    fi_activate_inst(0)
    y = x + 4
    A[0] = y
    A[1] = A[0] + x
    fi_activate_inst(0)
    print_int(A[1])
    print_char(10)
    exit(0)
"""


def traced_run(model="atomic"):
    tracer = DefUseTracer()
    injector = FaultInjector()
    sim = Simulator(SimConfig(cpu_model=model), injector=injector)
    sim.load(compile_source(TRACED_PROGRAM), "traced")
    injector.install_tracer(tracer)
    result = sim.run(max_instructions=2_000_000)
    assert result.status == "completed"
    return sim, injector, tracer


class TestTracerIntegration:
    def test_no_tracer_means_cold_flag(self):
        injector = FaultInjector()
        assert injector.trace_hot is False
        injector.install_tracer(DefUseTracer())
        assert injector.trace_hot is True

    def test_trace_covers_window_and_tail(self):
        _, injector, tracer = traced_run()
        assert tracer.started
        assert not tracer.tainted
        window = [e.window_index for e in tracer.events
                  if e.window_index is not None]
        assert window == list(range(1, len(window) + 1))
        assert len(window) == injector.windows[0]["committed"]
        # Registers/memory written in the window are consumed later, so
        # the trace must extend past the window close.
        assert tracer.events[-1].window_index is None

    def test_values_and_initial_snapshot_recorded(self):
        _, _, tracer = traced_run()
        assert tracer.initial_regs is not None
        assert len(tracer.initial_regs) == 64
        for event in tracer.events:
            assert len(event.write_values) == len(event.writes)

    def test_o3_trace_matches_atomic_in_the_window(self):
        # Commits are architectural and program-ordered in every model,
        # so the windowed def-use stream is model-independent.
        _, _, atomic = traced_run("atomic")
        _, _, o3 = traced_run("o3")
        key = lambda t: [(e.window_index, e.pc, e.word, e.reads,
                          e.writes, e.write_values)
                         for e in t.events if e.window_index is not None]
        assert key(o3) == key(atomic)

    def test_analysis_over_real_trace_is_usable(self):
        _, _, tracer = traced_run()
        analysis = LivenessAnalysis(tracer)
        assert analysis.window_length() > 0
        n = analysis.window_length()
        verdict = analysis.classify(
            seu(LocationKind.INT_REG, n + 2, 0, reg_index=5))
        assert verdict.reason == MASKED_NEVER_TRIGGERS


# -- end-to-end pruning on a paper workload ---------------------------------------


@pytest.fixture(scope="module")
def dct_runner():
    return CampaignRunner(build("dct", "tiny"))


class TestCampaignPruning:
    def test_pruned_plan_saves_at_least_30_percent(self, dct_runner):
        plan = dct_runner.pruned_generator(seed=0).plan(200)
        assert plan.total == 200
        assert plan.experiments + plan.masked_count + plan.collapsed \
            == plan.total
        assert plan.fraction_saved >= 0.30

    def test_pruned_plan_covers_the_exact_fault_stream(self, dct_runner):
        baseline = SEUGenerator(dct_runner.golden.profile,
                                seed=0).batch(200)
        plan = dct_runner.pruned_generator(seed=0).plan(200)
        planned = [f for run in plan.runs for f in run.members]
        planned += [site.fault for site in plan.predicted]
        key = lambda fs: sorted(f.describe() for f in fs)
        assert key(planned) == key(baseline)

    def test_provably_masked_sites_are_actually_masked(self, dct_runner):
        """Acceptance check: inject at predicted-masked sites and
        confirm the prediction (golden-equal outputs, exact outcome)."""
        liveness = dct_runner.liveness()
        generator = SEUGenerator(dct_runner.golden.profile, seed=1)
        picked = {}
        for _ in range(3000):
            fault = generator.generate()
            verdict = liveness.classify(fault)
            if not verdict.masked:
                continue
            if len(picked.setdefault(verdict.reason, [])) < 2:
                picked[verdict.reason].append((fault, verdict))
            if sum(len(v) for v in picked.values()) >= 10:
                break
        assert picked, "expected some provably-masked sites"
        for reason, sites in picked.items():
            for fault, verdict in sites:
                result = dct_runner.run_experiment(fault)
                expected = (Outcome.STRICTLY_CORRECT if verdict.propagated
                            else Outcome.NON_PROPAGATED)
                assert result.outcome == expected, \
                    f"{reason}: {fault.describe()} -> {result.outcome}"
                assert result.injected == verdict.injected, reason

    def test_pruned_estimator_equals_unpruned(self, dct_runner):
        """Same seed => same fault stream => identical estimator."""
        generator = SEUGenerator(dct_runner.golden.profile, seed=7)
        full = dct_runner.run_campaign(generator.batch(16))
        plan = dct_runner.pruned_generator(seed=7).plan(16)
        assert plan.experiments < 16
        pruned = dct_runner.run_pruned(plan, per_member=True)
        assert len(pruned) == 16
        assert summary(pruned).counts == summary(full).counts
        full_loc = by_location(full)
        pruned_loc = by_location(pruned)
        assert set(full_loc) == set(pruned_loc)
        for location, dist in full_loc.items():
            assert pruned_loc[location].counts == dist.counts

    def test_weighted_run_reports_effective_sample_size(self, dct_runner):
        plan = dct_runner.pruned_generator(seed=7).plan(16)
        n_eff = kish_effective_sample_size(plan.weights())
        assert 0 < n_eff <= plan.experiments
        low, high = weighted_proportion_confidence_interval(
            plan.total - 1, plan.total, n_eff)
        assert 0.0 <= low <= high <= 1.0
