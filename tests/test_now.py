"""Network-of-workstations campaign tests (Section III.E, Fig. 8)."""

import json
import os
import threading

import pytest

from repro.campaign import (
    CampaignRunner,
    NoWConfig,
    SEUGenerator,
    SharedDirCampaign,
    now_speedup,
    outcome_counts,
    simulate_makespan,
)
from repro.workloads import build


class TestMakespanMetaSimulator:
    def test_empty_campaign(self):
        assert simulate_makespan([], NoWConfig()) == 0.0

    def test_single_slot_serialises(self):
        config = NoWConfig(workstations=1, slots_per_workstation=1)
        assert simulate_makespan([1.0, 2.0, 3.0], config) == 6.0

    def test_perfect_parallelism_with_equal_jobs(self):
        config = NoWConfig(workstations=2, slots_per_workstation=2)
        assert simulate_makespan([1.0] * 8, config) == 2.0

    def test_makespan_bounded_by_longest_job(self):
        config = NoWConfig(workstations=4, slots_per_workstation=1)
        durations = [10.0] + [0.1] * 30
        makespan = simulate_makespan(durations, config)
        assert makespan >= 10.0
        assert makespan < 12.0

    def test_checkpoint_copy_adds_constant(self):
        config = NoWConfig(workstations=2, slots_per_workstation=1)
        without = simulate_makespan([1.0] * 4, config)
        with_copy = simulate_makespan([1.0] * 4, config,
                                      checkpoint_copy_seconds=5.0)
        assert with_copy == without + 5.0

    def test_paper_scale_speedup_approaches_slot_count(self):
        """Fig. 8: with 27x4 = 108 slots and thousands of similar-length
        experiments the speedup approaches ~108x."""
        config = NoWConfig(workstations=27, slots_per_workstation=4)
        durations = [1.0 + (i % 7) * 0.01 for i in range(2500)]
        speedup = now_speedup(durations, config)
        assert 95.0 < speedup <= 108.0

    def test_speedup_capped_by_work(self):
        config = NoWConfig(workstations=27, slots_per_workstation=4)
        assert now_speedup([5.0], config) == 1.0


class TestSharedDirProtocol:
    @pytest.fixture(scope="class")
    def runner(self):
        return CampaignRunner(build("pi", "tiny"))

    def test_publish_creates_share_layout(self, tmp_path, runner):
        campaign = SharedDirCampaign(str(tmp_path), "pi", "tiny")
        generator = SEUGenerator(runner.golden.profile, seed=3)
        campaign.publish(runner, generator.batch(4))
        assert sorted(os.listdir(tmp_path / "todo")) == [
            f"exp_{i:04d}.txt" for i in range(4)]
        assert (tmp_path / "checkpoint.bin").exists()
        assert (tmp_path / "workload.json").exists()

    def test_claim_is_exclusive(self, tmp_path, runner):
        campaign = SharedDirCampaign(str(tmp_path), "pi", "tiny")
        generator = SEUGenerator(runner.golden.profile, seed=4)
        campaign.publish(runner, generator.batch(3))
        claims = [campaign.claim("w0"), campaign.claim("w1"),
                  campaign.claim("w0"), campaign.claim("w1")]
        assert claims[3] is None
        assert len({c for c in claims if c}) == 3
        assert not os.listdir(tmp_path / "todo")

    def test_worker_loop_in_process(self, tmp_path, runner):
        campaign = SharedDirCampaign(str(tmp_path), "pi", "tiny")
        generator = SEUGenerator(runner.golden.profile, seed=5)
        campaign.publish(runner, generator.batch(5))
        completed = campaign.worker_loop("w0", runner)
        assert completed == 5
        results = campaign.collect()
        assert len(results) == 5
        counts = outcome_counts(results)
        assert sum(counts.values()) == 5

    def test_claim_writes_exclusive_claim_file(self, tmp_path, runner):
        campaign = SharedDirCampaign(str(tmp_path), "pi", "tiny")
        generator = SEUGenerator(runner.golden.profile, seed=7)
        campaign.publish(runner, generator.batch(1))
        target = campaign.claim("w0")
        assert target is not None
        assert os.path.basename(target) == "w0_exp_0000.txt"
        claim_path = tmp_path / "claims" / "exp_0000.txt.claim"
        entry = json.loads(claim_path.read_text())
        assert entry["worker"] == "w0"
        assert entry["pid"] == os.getpid()
        assert "time" in entry

    def test_existing_claim_file_blocks_the_experiment(self, tmp_path,
                                                       runner):
        """The O_CREAT|O_EXCL claim is the lock: a pre-existing claim
        file (a racing workstation that won) makes claim() skip the
        experiment even though the todo file is still visible."""
        campaign = SharedDirCampaign(str(tmp_path), "pi", "tiny")
        generator = SEUGenerator(runner.golden.profile, seed=8)
        campaign.publish(runner, generator.batch(2))
        blocker = tmp_path / "claims" / "exp_0000.txt.claim"
        blocker.write_text(json.dumps(
            {"worker": "rival", "pid": 1, "time": 10 ** 12}))
        target = campaign.claim("w0")
        assert os.path.basename(target) == "w0_exp_0001.txt"
        # exp_0000 stays queued for its (live) claimant.
        assert os.listdir(tmp_path / "todo") == ["exp_0000.txt"]
        assert campaign.claim("w0") is None

    def test_threaded_claim_storm_is_disjoint(self, tmp_path, runner):
        campaign = SharedDirCampaign(str(tmp_path), "pi", "tiny")
        generator = SEUGenerator(runner.golden.profile, seed=9)
        campaign.publish(runner, generator.batch(12))
        claims: dict[str, list[str]] = {}

        def drain(worker_id):
            mine = claims.setdefault(worker_id, [])
            view = SharedDirCampaign(str(tmp_path), "pi", "tiny")
            while True:
                got = view.claim(worker_id)
                if got is None:
                    return
                mine.append(os.path.basename(got).split("_", 1)[1])

        threads = [threading.Thread(target=drain, args=(f"w{i}",))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        winners = [name for mine in claims.values() for name in mine]
        assert sorted(winners) == [f"exp_{i:04d}.txt" for i in range(12)]
        assert not os.listdir(tmp_path / "todo")

    def test_stale_claim_is_recovered_once(self, tmp_path, runner):
        clock = {"now": 1000.0}
        campaign = SharedDirCampaign(str(tmp_path), "pi", "tiny",
                                     stale_claim_seconds=600.0,
                                     clock=lambda: clock["now"])
        generator = SEUGenerator(runner.golden.profile, seed=10)
        campaign.publish(runner, generator.batch(1))
        assert campaign.claim("w0") is not None
        # Fresh claim, no result: nothing to steal yet.
        assert campaign.claim("w1") is None
        # The claimant "crashes"; after the timeout another workstation
        # recovers the experiment and re-claims it.
        clock["now"] += 601.0
        stolen = campaign.claim("w1")
        assert stolen is not None
        assert os.path.basename(stolen) == "w1_exp_0000.txt"
        entry = json.loads(
            (tmp_path / "claims" / "exp_0000.txt.claim").read_text())
        assert entry["worker"] == "w1"
        assert not (tmp_path / "claimed" / "w0_exp_0000.txt").exists()
        # The queue is drained while w1's claim is fresh.
        assert campaign.claim("w2") is None

    def test_finished_experiments_are_never_stolen(self, tmp_path,
                                                   runner):
        clock = {"now": 1000.0}
        campaign = SharedDirCampaign(str(tmp_path), "pi", "tiny",
                                     stale_claim_seconds=600.0,
                                     clock=lambda: clock["now"])
        generator = SEUGenerator(runner.golden.profile, seed=11)
        campaign.publish(runner, generator.batch(1))
        assert campaign.claim("w0") is not None
        (tmp_path / "results" / "exp_0000.json").write_text(
            json.dumps({"outcome": "correct"}))
        clock["now"] += 10_000.0
        assert campaign.claim("w1") is None
        entry = json.loads(
            (tmp_path / "claims" / "exp_0000.txt.claim").read_text())
        assert entry["worker"] == "w0"

    @pytest.mark.slow
    def test_multiprocess_workers_drain_queue(self, tmp_path, runner):
        campaign = SharedDirCampaign(str(tmp_path), "pi", "tiny")
        generator = SEUGenerator(runner.golden.profile, seed=6)
        campaign.publish(runner, generator.batch(4))
        results = campaign.run_local(workers=2)
        assert len(results) == 4
        assert all("outcome" in entry for entry in results)


class TestAtomicPublication:
    """Result/workload files appear atomically: a reader (collect, a
    claiming worker, gemfi status) must never observe a half-written
    file, only a complete one or a skippable ``.tmp.*`` leftover."""

    @pytest.fixture(scope="class")
    def runner(self):
        return CampaignRunner(build("pi", "tiny"))

    def test_collect_skips_tmp_leftovers(self, tmp_path, runner):
        campaign = SharedDirCampaign(str(tmp_path), "pi", "tiny")
        generator = SEUGenerator(runner.golden.profile, seed=21)
        campaign.publish(runner, generator.batch(2))
        campaign.worker_loop("w0", runner)
        # a writer that crashed mid-publish leaves its temp file
        (tmp_path / "results" / "exp_0009.json.tmp.1234.5678"
         ).write_text('{"outcome": "tru')
        results = campaign.collect()
        assert len(results) == 2
        assert all(entry["outcome"] for entry in results)

    def test_collect_survives_truncated_result(self, tmp_path,
                                               runner):
        """Regression: a torn write (pre-atomic-publication crash)
        must not take down every reader of the share."""
        campaign = SharedDirCampaign(str(tmp_path), "pi", "tiny")
        generator = SEUGenerator(runner.golden.profile, seed=22)
        campaign.publish(runner, generator.batch(1))
        campaign.worker_loop("w0", runner)
        (tmp_path / "results" / "exp_0099.json").write_text(
            '{"outcome": "sd')  # torn mid-value
        results = campaign.collect()
        assert len(results) == 1

    def test_claim_skips_tmp_todo_files(self, tmp_path, runner):
        campaign = SharedDirCampaign(str(tmp_path), "pi", "tiny")
        generator = SEUGenerator(runner.golden.profile, seed=23)
        campaign.publish(runner, generator.batch(1))
        (tmp_path / "todo" / "exp_0042.txt.tmp.1.2").write_text("Re")
        first = campaign.claim("w0")
        assert os.path.basename(first) == "w0_exp_0000.txt"
        assert campaign.claim("w0") is None  # the .tmp is not a job

    def test_published_files_have_no_tmp_residue(self, tmp_path,
                                                 runner):
        campaign = SharedDirCampaign(str(tmp_path), "pi", "tiny")
        generator = SEUGenerator(runner.golden.profile, seed=24)
        campaign.publish(runner, generator.batch(3))
        campaign.worker_loop("w0", runner)
        leftovers = [
            os.path.join(root, name)
            for root, _, names in os.walk(tmp_path)
            for name in names if ".tmp." in name]
        assert leftovers == []

    def test_worker_loop_joins_heartbeat_threads(self, tmp_path,
                                                 runner):
        """Embedding worker_loop in a long-lived process (the service
        dispatcher) must not accumulate heartbeat threads."""
        campaign = SharedDirCampaign(str(tmp_path), "pi", "tiny")
        generator = SEUGenerator(runner.golden.profile, seed=25)
        campaign.publish(runner, generator.batch(3))
        before = threading.active_count()
        for worker in ("w0", "w1", "w2"):
            campaign.worker_loop(worker, runner)
        assert threading.active_count() == before
