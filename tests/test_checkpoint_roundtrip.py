"""Mid-run checkpoint round-trips across all four CPU models.

A checkpoint taken while a program is in flight must restore to a
simulator that finishes with the same architectural results — console
output, committed instruction count, exit state — on every CPU model.
The detailed models intentionally drop speculative/in-flight
microarchitectural state (the O3 ROB is refilled by refetching from the
architectural PC), so tick counts may differ after a restore; only the
atomic model promises bit-identical statistics.
"""

import pytest

from repro.core import FaultInjector
from repro.sim import SimConfig, Simulator, dumps_checkpoint, \
    restore_checkpoint

from conftest import run_asm

MODELS = ("atomic", "timing", "inorder", "o3")


def _fresh(mixed_asm, model):
    sim = Simulator(SimConfig(cpu_model=model), injector=FaultInjector())
    sim.load(mixed_asm, "roundtrip")
    return sim


class TestMidRunRoundTrip:
    @pytest.mark.parametrize("model", MODELS)
    def test_restored_run_matches_original(self, mixed_asm, model):
        original = _fresh(mixed_asm, model)
        paused = original.run(max_instructions=800)
        assert paused.status != "completed", \
            "pause point must fall mid-run"
        blob = dumps_checkpoint(original)

        finished = original.run(max_instructions=2_000_000)
        assert finished.status == "completed"

        restored = restore_checkpoint(blob)
        replay = restored.run(max_instructions=2_000_000)
        assert replay.status == "completed"

        assert restored.console_text() == original.console_text()
        assert restored.instructions == original.instructions
        proc_a = original.process(0)
        proc_b = restored.process(0)
        assert proc_b.exit_code == proc_a.exit_code
        assert proc_b.crash_reason == proc_a.crash_reason

        if model == "atomic":
            # One instruction per tick: the restore is bit-exact.
            assert restored.stats_dump() == original.stats_dump()

    @pytest.mark.parametrize("model", MODELS)
    def test_checkpoint_does_not_perturb_the_original(self, mixed_asm,
                                                      model):
        checkpointed = _fresh(mixed_asm, model)
        checkpointed.run(max_instructions=800)
        dumps_checkpoint(checkpointed)
        result = checkpointed.run(max_instructions=2_000_000)

        plain = _fresh(mixed_asm, model)
        reference = plain.run(max_instructions=2_000_000)

        assert result.status == reference.status == "completed"
        assert checkpointed.console_text() == plain.console_text()
        assert checkpointed.instructions == plain.instructions
        assert result.ticks == reference.ticks


class TestO3StatsCounters:
    def test_identical_runs_have_identical_stats(self, mixed_asm):
        sim_a, result_a = run_asm(mixed_asm, model="o3")
        sim_b, result_b = run_asm(mixed_asm, model="o3")
        assert result_a.status == result_b.status == "completed"
        assert sim_a.stats_dump() == sim_b.stats_dump()

    def test_rob_counters_present_and_sane(self, mixed_asm):
        sim, result = run_asm(mixed_asm, model="o3")
        assert result.status == "completed"
        stats = dict(
            line.split(None, 1)
            for line in sim.stats_dump().strip().splitlines())
        hwm = int(stats["system.cpu0.rob.occupancy_hwm"])
        stalls = int(stats["system.cpu0.rob.rename_stalls"])
        assert hwm >= 1
        assert stalls >= 0

    def test_rob_hwm_survives_checkpoint(self, mixed_asm):
        sim = _fresh(mixed_asm, "o3")
        sim.run(max_instructions=800)
        blob = dumps_checkpoint(sim)
        sim.run(max_instructions=2_000_000)
        restored = restore_checkpoint(blob)
        restored.run(max_instructions=2_000_000)
        assert "system.cpu0.rob.occupancy_hwm" in restored.stats_dump()
