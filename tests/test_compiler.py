"""MiniC compiler tests: language features and error reporting."""

import pytest

from repro.compiler import CompileError, compile_source, parse_program

from conftest import run_minic


def output_of(source, **kwargs):
    sim, result = run_minic(source, **kwargs)
    process = sim.process(0)
    assert process.state.value == "exited", process.crash_reason
    assert process.exit_code == 0
    return sim.console_text()


class TestArithmetic:
    def test_integer_ops(self):
        assert output_of("""
def main():
    print_int(7 + 3 * 4 - 5)
    print_char(32)
    print_int(17 // 5)
    print_char(32)
    print_int(17 % 5)
    print_char(32)
    print_int((1 << 10) >> 3)
    print_char(32)
    print_int(12 & 10)
    print_char(32)
    print_int(12 | 3)
    print_char(32)
    print_int(12 ^ 10)
    exit(0)
""") == "14 3 2 128 8 15 6"

    def test_negative_division_truncates(self):
        # C-style semantics, documented deviation from Python floor-div.
        assert output_of("""
def main():
    a = -7
    print_int(a // 2)
    print_char(32)
    print_int(a % 2)
    exit(0)
""") == "-3 -1"

    def test_unary_ops(self):
        assert output_of("""
def main():
    x = 5
    print_int(-x)
    print_char(32)
    print_int(~x)
    print_char(32)
    print_int(not x)
    print_char(32)
    print_int(not 0)
    exit(0)
""") == "-5 -6 0 1"

    def test_float_arithmetic(self):
        assert output_of("""
def main():
    print_float(1.5 * 4.0 - 0.25)
    print_char(32)
    print_float(7.0 / 2.0)
    exit(0)
""") == "5.75 3.5"

    def test_mixed_int_float_promotes(self):
        assert output_of("""
def main():
    x = 3
    print_float(x + 0.5)
    print_char(32)
    print_float(x / 2)
    exit(0)
""") == "3.5 1.5"

    def test_large_int_constants(self):
        assert output_of(f"""
def main():
    print_int({1 << 62})
    exit(0)
""") == str(1 << 62)

    def test_conversions(self):
        assert output_of("""
def main():
    print_int(int(3.99))
    print_char(32)
    print_int(int(-3.99))
    print_char(32)
    print_float(float(7))
    exit(0)
""") == "3 -3 7"

    def test_sqrt_and_abs(self):
        assert output_of("""
def main():
    print_float(sqrt(16.0))
    print_char(32)
    print_int(abs(-9))
    print_char(32)
    print_float(abs(-2.5))
    exit(0)
""") == "4 9 2.5"


class TestControlFlow:
    def test_if_elif_else(self):
        assert output_of("""
def grade(x) -> int:
    if x > 80:
        return 3
    elif x > 50:
        return 2
    else:
        return 1

def main():
    print_int(grade(90))
    print_int(grade(60))
    print_int(grade(10))
    exit(0)
""") == "321"

    def test_while_with_break_continue(self):
        assert output_of("""
def main():
    i = 0
    total = 0
    while 1:
        i += 1
        if i > 100:
            break
        if i % 2 == 0:
            continue
        total += i
    print_int(total)
    exit(0)
""") == "2500"

    def test_for_range_variants(self):
        assert output_of("""
def main():
    a = 0
    for i in range(5):
        a += i
    b = 0
    for i in range(2, 7):
        b += i
    c = 0
    for i in range(10, 0, -2):
        c += i
    print_int(a)
    print_char(32)
    print_int(b)
    print_char(32)
    print_int(c)
    exit(0)
""") == "10 20 30"

    def test_boolean_short_circuit(self):
        # The right operand of `and` must not evaluate when the left is
        # false: division by zero would crash.
        assert output_of("""
def main():
    x = 0
    if x != 0 and 10 // x > 0:
        print_int(1)
    else:
        print_int(2)
    if x == 0 or 10 // x > 0:
        print_int(3)
    exit(0)
""") == "23"

    def test_bool_as_value(self):
        assert output_of("""
def main():
    a = 3 < 5
    b = 5 < 3
    c = a and not b
    print_int(a + b * 10 + c * 100)
    exit(0)
""") == "101"

    def test_float_comparisons(self):
        assert output_of("""
def main():
    x = 1.5
    print_int(x < 2.0)
    print_int(x <= 1.5)
    print_int(x > 2.0)
    print_int(x != 1.5)
    print_int(x == 1.5)
    exit(0)
""") == "11001"

    def test_ifexp(self):
        assert output_of("""
def main():
    x = 7
    print_int(1 if x > 5 else 0)
    print_float(2.5 if x < 5 else 0.5)
    exit(0)
""") == "10.5"


class TestFunctions:
    def test_recursion(self):
        assert output_of("""
def fib(n) -> int:
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)

def main():
    print_int(fib(12))
    exit(0)
""") == "144"

    def test_six_arguments(self):
        assert output_of("""
def weigh(a, b, c, d, e, f) -> int:
    return a + 2*b + 3*c + 4*d + 5*e + 6*f

def main():
    print_int(weigh(1, 2, 3, 4, 5, 6))
    exit(0)
""") == "91"

    def test_float_params_and_return(self):
        assert output_of("""
def mix(a: float, k, b: float) -> float:
    return a * float(k) + b

def main():
    print_float(mix(1.5, 4, 0.25))
    exit(0)
""") == "6.25"

    def test_nested_calls_preserve_temps(self):
        assert output_of("""
def add(a, b) -> int:
    return a + b

def main():
    print_int(add(add(1, 2), add(3, add(4, 5))) * 2)
    exit(0)
""") == "30"

    def test_many_locals_spill_to_stack(self):
        # More locals than callee-saved registers.
        decls = "\n    ".join(f"v{i} = {i} * 3" for i in range(12))
        total = " + ".join(f"v{i}" for i in range(12))
        assert output_of(f"""
def main():
    {decls}
    print_int({total})
    exit(0)
""") == str(sum(i * 3 for i in range(12)))


class TestGlobalsAndArrays:
    def test_global_scalars(self):
        assert output_of("""
N = 5
X = 2.5

def bump():
    pass

def main():
    print_int(N * 2)
    print_float(X + 0.5)
    exit(0)
""") == "103"

    def test_global_scalar_assignment(self):
        assert output_of("""
COUNTER = 0

def tick():
    COUNTER = COUNTER + 1

def main():
    tick()
    tick()
    tick()
    print_int(COUNTER)
    exit(0)
""") == "3"

    def test_int_and_float_arrays(self):
        assert output_of("""
A = iarray(4)
B = farray(4)

def main():
    for i in range(4):
        A[i] = i * i
        B[i] = float(i) / 2.0
    print_int(A[3])
    print_float(B[3])
    exit(0)
""") == "91.5"

    def test_initialised_arrays(self):
        assert output_of("""
A = iarray_init([10, 20, 30])
B = farray_init([0.5, -1.5])

def main():
    print_int(A[0] + A[1] + A[2])
    print_float(B[0] + B[1])
    exit(0)
""") == "60-1"

    def test_augmented_array_element(self):
        assert output_of("""
A = iarray(2)

def main():
    A[1] = 5
    A[1] += 37
    print_int(A[1])
    exit(0)
""") == "42"

    def test_out_of_bounds_index_hits_adjacent_memory_or_crashes(self):
        # No bounds checks (C semantics): a huge index segfaults.
        sim, _ = run_minic("""
A = iarray(2)

def main():
    i = 100000000
    A[i] = 1
    exit(0)
""")
        assert sim.process(0).state.value == "crashed"


class TestCompileErrors:
    def test_missing_main(self):
        with pytest.raises(CompileError, match="main"):
            compile_source("def helper():\n    pass\n")

    def test_unknown_variable(self):
        with pytest.raises(CompileError, match="unknown variable"):
            compile_source("def main():\n    print_int(nope)\n")

    def test_unknown_function(self):
        with pytest.raises(CompileError, match="unknown function"):
            compile_source("def main():\n    zorp(1)\n")

    def test_wrong_arity(self):
        with pytest.raises(CompileError, match="argument"):
            compile_source("""
def f(a, b) -> int:
    return a

def main():
    f(1)
""")

    def test_bad_annotation(self):
        with pytest.raises(CompileError, match="annotations"):
            compile_source("def main():\n    pass\n"
                           "def f(x: str) -> int:\n    return 0\n")

    def test_float_modulo_rejected(self):
        with pytest.raises(CompileError, match="integer operands"):
            compile_source("def main():\n    x = 1.5 % 2\n")

    def test_array_without_index(self):
        with pytest.raises(CompileError, match="index"):
            compile_source("A = iarray(4)\ndef main():\n"
                           "    print_int(A)\n")

    def test_chained_comparison_rejected(self):
        with pytest.raises(CompileError, match="chained"):
            compile_source("def main():\n    x = 1 < 2 < 3\n")

    def test_error_includes_line_number(self):
        with pytest.raises(CompileError, match="line 3"):
            compile_source("def main():\n    x = 1\n    y = nope\n")

    def test_parse_program_collects_symbols(self):
        program = parse_program("""
N = 3
A = farray(8)

def f(x: float) -> float:
    return x

def main():
    pass
""")
        assert program.globals["N"].type == "int"
        assert program.arrays["A"].elem_type == "float"
        assert program.functions["f"].ret_type == "float"
        assert program.functions["f"].params == [("x", "float")]


class TestLocalArrays:
    def test_basic_store_load(self):
        assert output_of("""
def main():
    buf = ilocal(4)
    buf[0] = 7
    buf[3] = buf[0] * 6
    print_int(buf[3])
    exit(0)
""") == "42"

    def test_zero_initialised(self):
        assert output_of("""
def scribble():
    junk = ilocal(6)
    for i in range(6):
        junk[i] = 999

def clean() -> int:
    buf = ilocal(6)
    total = 0
    for i in range(6):
        total += buf[i]
    return total

def main():
    scribble()
    print_int(clean())
    exit(0)
""") == "0"

    def test_large_array_loop_init(self):
        assert output_of("""
def main():
    buf = ilocal(64)
    total = 0
    for i in range(64):
        total += buf[i]
    buf[63] = 5
    print_int(total + buf[63])
    exit(0)
""") == "5"

    def test_float_local_array(self):
        assert output_of("""
def main():
    f = flocal(3)
    f[1] = 1.25
    print_float(f[0] + f[1] * 2.0)
    exit(0)
""") == "2.5"

    def test_recursion_gets_fresh_arrays(self):
        assert output_of("""
def depth(n) -> int:
    buf = ilocal(4)
    buf[0] = n
    if n > 0:
        depth(n - 1)
    return buf[0]

def main():
    print_int(depth(5))
    exit(0)
""") == "5"

    def test_reassignment_rejected(self):
        with pytest.raises(CompileError, match="reassign"):
            compile_source("""
def main():
    buf = ilocal(4)
    buf = 5
""")

    def test_shadowing_global_rejected(self):
        with pytest.raises(CompileError, match="shadows"):
            compile_source("""
A = iarray(4)

def main():
    A = ilocal(4)
""")

    def test_size_bounds(self):
        with pytest.raises(CompileError, match="size"):
            compile_source("def main():\n    b = ilocal(0)\n")
        with pytest.raises(CompileError, match="size"):
            compile_source("def main():\n    b = ilocal(100000)\n")

    def test_bare_name_rejected(self):
        with pytest.raises(CompileError, match="without an index"):
            compile_source("""
def main():
    buf = ilocal(4)
    print_int(buf)
""")


class TestMinMax:
    def test_int_min_max(self):
        assert output_of("""
def main():
    print_int(min(-5, 3))
    print_char(32)
    print_int(max(-5, 3))
    print_char(32)
    print_int(min(7, 7))
    exit(0)
""") == "-5 3 7"

    def test_float_min_max(self):
        assert output_of("""
def main():
    print_float(min(2.5, -1.0))
    print_char(32)
    print_float(max(2.5, -1.0))
    exit(0)
""") == "-1 2.5"

    def test_mixed_promotes_to_float(self):
        assert output_of("""
def main():
    print_float(max(2, 2.5))
    exit(0)
""") == "2.5"
