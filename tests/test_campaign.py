"""Campaign tests: sampling, generation, running, classification."""

import math

import pytest

from repro.campaign import (
    CampaignRunner,
    LOCATION_WIDTHS,
    Outcome,
    SEUGenerator,
    VddScaledGenerator,
    by_fetch_field,
    by_location,
    by_time_bins,
    mean_confidence_interval,
    proportion_confidence_interval,
    render_location_table,
    render_time_table,
    sample_size,
    summary,
)
from repro.core import LocationKind, parse_fault_line
from repro.workloads import build


@pytest.fixture(scope="module")
def pi_runner():
    return CampaignRunner(build("pi", "tiny"))


@pytest.fixture(scope="module")
def profile(pi_runner):
    return pi_runner.golden.profile


class TestSampling:
    def test_infinite_population_99_1(self):
        # t=2.576, e=0.01, p=0.5 -> 16588 samples.
        n = sample_size(math.inf, confidence=0.99, error_margin=0.01)
        assert 16580 <= n <= 16600

    def test_finite_population_shrinks_n(self):
        n_inf = sample_size(math.inf, 0.99, 0.01)
        n_fin = sample_size(100_000, 0.99, 0.01)
        assert n_fin < n_inf

    def test_never_exceeds_population(self):
        assert sample_size(100, 0.99, 0.01) <= 100

    def test_paper_regime(self):
        # 2501-2504 experiments correspond to ~2.6% margin at 99%.
        n = sample_size(math.inf, confidence=0.99, error_margin=0.0258)
        assert 2400 <= n <= 2600

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            sample_size(0)
        with pytest.raises(ValueError):
            sample_size(100, error_margin=0)
        with pytest.raises(ValueError):
            sample_size(100, p=1.5)

    def test_wilson_interval_contains_estimate(self):
        low, high = proportion_confidence_interval(30, 100)
        assert low < 0.30 < high
        assert 0.0 <= low and high <= 1.0

    def test_wilson_degenerate_cases(self):
        assert proportion_confidence_interval(0, 0) == (0.0, 1.0)
        low, high = proportion_confidence_interval(0, 50)
        assert low < 1e-12 and high < 0.15

    def test_mean_ci(self):
        mean, low, high = mean_confidence_interval([1.0, 2.0, 3.0])
        assert mean == 2.0
        assert low < 2.0 < high


class TestGenerator:
    def test_seeded_generator_is_deterministic(self, profile):
        a = SEUGenerator(profile, seed=7).batch(20)
        b = SEUGenerator(profile, seed=7).batch(20)
        assert [f.describe() for f in a] == [f.describe() for f in b]

    def test_generated_faults_are_single_bit_flips(self, profile):
        for fault in SEUGenerator(profile, seed=1).batch(50):
            assert len(fault.behavior.bits) == 1
            assert fault.behavior.occ == 1
            bit = fault.behavior.bits[0]
            assert 0 <= bit < LOCATION_WIDTHS[fault.location]

    def test_times_within_window(self, profile):
        generator = SEUGenerator(profile, seed=2)
        for fault in generator.batch(100):
            assert 1 <= fault.time <= profile.count_for(fault.location)

    def test_pinned_location(self, profile):
        faults = SEUGenerator(profile, seed=3).batch(
            10, location=LocationKind.PC)
        assert all(f.location is LocationKind.PC for f in faults)

    def test_fault_space_size_positive(self, profile):
        assert SEUGenerator(profile, seed=0).fault_space_size() > 10_000

    def test_vdd_scaling_monotone(self, profile):
        low_v = VddScaledGenerator(profile, seed=0, vdd=0.7)
        high_v = VddScaledGenerator(profile, seed=0, vdd=1.0)
        assert low_v.expected_upsets > high_v.expected_upsets

    def test_vdd_nominal_rarely_faults(self, profile):
        generator = VddScaledGenerator(profile, seed=5, vdd=1.0,
                                       base_rate=0.05)
        counts = [len(generator.faults_for_run()) for _ in range(50)]
        assert sum(counts) < 15   # lambda=0.05 -> ~2.5 total expected

    def test_vdd_low_faults_often(self, profile):
        generator = VddScaledGenerator(profile, seed=5, vdd=0.7,
                                       base_rate=0.05, alpha=12.0)
        counts = [len(generator.faults_for_run()) for _ in range(20)]
        assert sum(counts) > 10


class TestRunnerAndClassification:
    def test_golden_artifacts(self, pi_runner):
        golden = pi_runner.golden
        assert golden.checkpoint is not None
        assert golden.profile.committed > 1000
        assert golden.outputs.console.startswith("pi ")
        assert golden.boot_instructions < golden.instructions

    def test_never_firing_fault_is_non_propagated(self, pi_runner):
        fault = parse_fault_line(
            "ExecutionStageInjectedFault Inst:999999999 Flip:0 "
            "Threadid:0 system.cpu0 occ:1")
        result = pi_runner.run_experiment(fault)
        assert result.outcome is Outcome.NON_PROPAGATED
        assert not result.injected

    def test_pc_fault_crashes(self, pi_runner):
        fault = parse_fault_line(
            "PCInjectedFault Inst:100 Flip:40 Threadid:0 "
            "system.cpu0 occ:1")
        result = pi_runner.run_experiment(fault)
        assert result.outcome is Outcome.CRASHED
        assert result.crash_reason or result.instructions > 0

    def test_dead_register_strictly_masked(self, pi_runner):
        fault = parse_fault_line(
            "RegisterInjectedFault Inst:100 Flip:60 Threadid:0 "
            "system.cpu0 occ:1 fp 29")
        result = pi_runner.run_experiment(fault)
        assert result.outcome in (Outcome.NON_PROPAGATED,
                                  Outcome.STRICTLY_CORRECT)

    def test_experiment_records_metadata(self, pi_runner):
        fault = parse_fault_line(
            "ExecutionStageInjectedFault Inst:50 Flip:0 Threadid:0 "
            "system.cpu0 occ:1")
        result = pi_runner.run_experiment(fault)
        assert result.injected
        assert result.injection_pc is not None
        assert 0.0 <= result.time_fraction <= 1.0
        assert result.as_dict()["outcome"] == result.outcome.value

    def test_campaign_over_mixed_faults(self, pi_runner):
        generator = SEUGenerator(pi_runner.golden.profile, seed=11)
        results = pi_runner.run_campaign(generator.batch(12))
        assert len(results) == 12
        dist = summary(results)
        assert dist.total == 12
        assert abs(sum(dist.fraction(o) for o in
                       (Outcome.CRASHED, Outcome.NON_PROPAGATED,
                        Outcome.STRICTLY_CORRECT, Outcome.CORRECT,
                        Outcome.SDC)) - 1.0) < 1e-9

    def test_detailed_o3_mode_runs(self):
        runner = CampaignRunner(build("pi", "tiny"),
                                detailed_model="o3")
        fault = parse_fault_line(
            "ExecutionStageInjectedFault Inst:50 Flip:0 Threadid:0 "
            "system.cpu0 occ:1")
        result = runner.run_experiment(fault)
        assert result.outcome in tuple(Outcome)

    def test_without_checkpoint_same_outcome(self):
        runner_checkpointed = CampaignRunner(build("pi", "tiny"))
        runner_fresh = CampaignRunner(build("pi", "tiny"),
                                      use_checkpoint=False)
        fault = parse_fault_line(
            "ExecutionStageInjectedFault Inst:50 All1 Threadid:0 "
            "system.cpu0 occ:1")
        first = runner_checkpointed.run_experiment(fault)
        second = runner_fresh.run_experiment(fault)
        assert first.outcome == second.outcome


class TestResultTables:
    def _results(self, pi_runner, n=15):
        generator = SEUGenerator(pi_runner.golden.profile, seed=21)
        return pi_runner.run_campaign(generator.batch(n))

    def test_by_location_partitions_everything(self, pi_runner):
        results = self._results(pi_runner)
        groups = by_location(results)
        assert sum(d.total for d in groups.values()) == len(results)

    def test_by_time_bins_partitions_everything(self, pi_runner):
        results = self._results(pi_runner)
        bins = by_time_bins(results, bins=5)
        assert sum(d.total for d in bins) == len(results)
        assert len(bins) == 5

    def test_fetch_field_analysis_uses_original_word(self, pi_runner):
        generator = SEUGenerator(pi_runner.golden.profile, seed=31)
        faults = generator.batch(10, location=LocationKind.FETCH)
        results = pi_runner.run_campaign(faults)
        groups = by_fetch_field(results)
        known_fields = {"opcode", "ra", "rb", "rc", "function",
                        "displacement", "literal", "lit_flag", "unused",
                        "pal_function", "not_injected"}
        assert set(groups) <= known_fields
        assert sum(d.total for d in groups.values()) == len(results)

    def test_render_tables_are_text(self, pi_runner):
        results = self._results(pi_runner)
        table = render_location_table(results, title="T")
        assert table.startswith("T\n")
        assert "ALL" in table
        table = render_time_table(results, bins=4)
        assert "t in [0.00,0.25)" in table
        assert "crashed" in table
