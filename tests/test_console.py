"""The embedded web console (``gemfi serve --ui``) and /v1/history."""

import asyncio
import http.client
import json
import re
import time

import pytest

from repro.cli import main
from repro.service import Service, ServiceApp, ServiceClient, ServiceError
from repro.service.http import HTTPError, Request

# -- plumbing -----------------------------------------------------------------

_ISLAND = re.compile(
    r'<script type="application/json" id="gemfi-data">(.*?)</script>',
    re.S)


def _get(service, path, method="GET"):
    conn = http.client.HTTPConnection(service.host, service.port,
                                      timeout=10.0)
    try:
        conn.request(method, path)
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), \
            response.read()
    finally:
        conn.close()


def _island(body: bytes) -> dict:
    match = _ISLAND.search(body.decode("utf-8"))
    assert match, "page has no gemfi-data JSON island"
    # "</" arrives escaped as "<\/" — a valid JSON escape, so the
    # island parses as-is, exactly like CI does it.
    return json.loads(match.group(1))


@pytest.fixture
def ui_service(tmp_path):
    """Console enabled, recorder beat off — tests sample explicitly
    via ``service.recorder.sample_once()`` for determinism."""
    service = Service(str(tmp_path / "data"), ui=True,
                      history_interval=0)
    service.start_http()
    yield service
    service.stop()


# -- the pages ----------------------------------------------------------------


class TestConsolePages:
    def test_ui_is_opt_in(self, tmp_path):
        service = Service(str(tmp_path / "noui")).start_http()
        try:
            status, _, _ = _get(service, "/ui")
            assert status == 404
        finally:
            service.stop()

    def test_index_lists_jobs_with_live_payload(self, ui_service):
        client = ServiceClient(ui_service.url, tenant="alice")
        try:
            job = client.submit({"workload": "pi", "experiments": 2,
                                 "seed": 5})
        finally:
            client.close()
        status, headers, body = _get(ui_service, "/ui")
        assert status == 200
        assert headers["Content-Type"] == "text/html; charset=utf-8"
        assert headers["Cache-Control"] == "no-store"
        text = body.decode("utf-8")
        assert "<!doctype html>" in text
        assert "Campaign explorer" in text
        payload = _island(body)
        assert payload["queue_depth"] == 1
        assert [j["id"] for j in payload["jobs"]] == [job["id"]]
        assert payload["jobs"][0]["tenant"] == "alice"
        assert payload["tenants"]["alice"] == {"queued": 1}

    def test_job_page_embeds_the_job_record(self, ui_service):
        client = ServiceClient(ui_service.url)
        try:
            job = client.submit({"workload": "dct", "experiments": 4,
                                 "seed": 9})
        finally:
            client.close()
        status, _, body = _get(ui_service, f"/ui/jobs/{job['id']}")
        assert status == 200
        payload = _island(body)
        assert payload["job"]["id"] == job["id"]
        assert payload["job"]["spec"]["workload"] == "dct"
        text = body.decode("utf-8")
        assert f"/v1/jobs/{job['id']}/status" in text
        assert 'id="events"' in text  # the live stream target

    def test_unknown_job_page_is_404(self, ui_service):
        status, _, body = _get(ui_service, "/ui/jobs/job-missing")
        assert status == 404
        assert "no such job" in json.loads(body)["error"]

    def test_coverage_page_empty_state(self, ui_service):
        """No dispatched jobs yet: the coverage page still renders,
        with an empty island instead of a 404."""
        status, _, body = _get(ui_service, "/ui/coverage")
        assert status == 200
        payload = _island(body)
        assert payload["job"] is None
        assert payload["jobs"] == []
        assert payload["coverage"] is None

    def test_nav_links_the_coverage_page(self, ui_service):
        _, _, body = _get(ui_service, "/ui")
        text = body.decode("utf-8")
        assert 'href="/ui/coverage"' in text
        assert 'href="/ui/compare"' in text

    def test_compare_page_empty_state(self, ui_service):
        """No archived or dispatched campaigns yet: the compare page
        renders an empty island instead of erroring."""
        status, _, body = _get(ui_service, "/ui/compare")
        assert status == 200
        payload = _island(body)
        assert payload["jobs"] == []
        assert payload["compare"] is None
        assert "nothing to compare yet" in body.decode("utf-8")

    def test_metrics_page_charts_recorded_series(self, ui_service):
        ui_service.recorder.sample_once()
        status, _, body = _get(ui_service, "/ui/metrics")
        assert status == 200
        payload = _island(body)
        assert payload["meta"]["rounds"] == 1
        assert payload["meta"]["interval"] == 0
        # queue.depth is a default chart and the refresh hook gauges
        # it before every snapshot.
        assert "queue.depth" in payload["history"]
        assert payload["history"]["queue.depth"][0][1] == 0.0

    def test_metrics_page_prefix_filter(self, ui_service):
        ui_service.recorder.sample_once()
        status, _, body = _get(ui_service, "/ui/metrics?prefix=store.")
        assert status == 200
        payload = _island(body)
        assert payload["history"]
        assert all(name.startswith("store.")
                   for name in payload["history"])

    def test_alerts_page_healthy(self, ui_service):
        status, _, body = _get(ui_service, "/ui/alerts")
        assert status == 200
        assert _island(body) == {"alerts": []}
        assert "no alerts" in body.decode("utf-8")
        # journal-only mode is one query param away
        status, _, body = _get(ui_service, "/ui/alerts?live=0")
        assert status == 200
        assert "journal only" in body.decode("utf-8")

    def test_timeline_and_report_404_before_dispatch(self, ui_service):
        client = ServiceClient(ui_service.url)
        try:
            job = client.submit({"workload": "pi"})
        finally:
            client.close()
        status, _, _ = _get(ui_service,
                            f"/ui/jobs/{job['id']}/timeline")
        assert status == 404
        status, _, _ = _get(ui_service,
                            f"/ui/jobs/{job['id']}/report")
        assert status == 404


# -- /v1/history --------------------------------------------------------------


class TestHistoryEndpoint:
    def test_rounds_are_monotone_across_scrapes(self, ui_service):
        client = ServiceClient(ui_service.url)
        try:
            before = client.history()
            assert before["meta"]["rounds"] == 0
            assert before["history"] == {}
            ui_service.recorder.sample_once()
            first = client.history()
            ui_service.recorder.sample_once()
            second = client.history()
        finally:
            client.close()
        assert first["meta"]["rounds"] == 1
        assert second["meta"]["rounds"] == 2
        assert second["meta"]["samples"] >= first["meta"]["samples"]
        assert len(second["history"]["queue.depth"]) == 2

    def test_prefix_and_limit_parameters(self, ui_service):
        ui_service.recorder.sample_once()
        ui_service.recorder.sample_once()
        client = ServiceClient(ui_service.url)
        try:
            payload = client.history(prefix="queue.", limit=1)
        finally:
            client.close()
        assert payload["history"]
        for name, points in payload["history"].items():
            assert name.startswith("queue.")
            assert len(points) == 1

    def test_bad_parameters_are_400(self, ui_service):
        status, _, body = _get(ui_service, "/v1/history?since=soon")
        assert status == 400
        assert "since must be a number" in json.loads(body)["error"]
        status, _, body = _get(ui_service, "/v1/history?limit=ten")
        assert status == 400
        assert "limit must be an integer" in \
            json.loads(body)["error"]

    def test_disabled_history_is_404(self, ui_service):
        # An app wired without a history store refuses the endpoint.
        app = ServiceApp(ui_service.queue, ui_service.store)
        request = Request(method="GET", path="/v1/history")
        with pytest.raises(HTTPError) as err:
            asyncio.run(app.history_series(request))
        assert err.value.status == 404

    def test_history_and_metrics_share_one_registry(self, ui_service):
        name = ('http.requests{code="2xx",method="GET",'
                'route="/v1/healthz"}')
        client = ServiceClient(ui_service.url)
        try:
            for _ in range(3):
                client.healthz()
            # The counter lands just after the response bytes do.
            deadline = time.time() + 5.0
            while time.time() < deadline \
                    and ui_service.observer.snapshot().get(name, 0) < 3:
                time.sleep(0.02)
            ui_service.recorder.sample_once()
            payload = client.history(prefix=name)
        finally:
            client.close()
        (points,) = payload["history"].values()
        assert points[-1][1] == 3


# -- UI traffic shows up in the observability plane ---------------------------


class TestUiObservability:
    def test_ui_routes_appear_in_openmetrics(self, ui_service):
        from repro.telemetry.export import parse_openmetrics
        _get(ui_service, "/ui")
        _get(ui_service, "/ui/metrics")
        client = ServiceClient(ui_service.url)
        try:
            families = parse_openmetrics(client.metrics_text())
        finally:
            client.close()
        routes = {labels.get("route")
                  for sample, labels, _
                  in families["http_requests"]["samples"]
                  if sample == "http_requests_total"}
        assert "/ui" in routes
        assert "/ui/metrics" in routes


# -- machine-readable CLI surfaces --------------------------------------------


class TestCliJsonOutput:
    def test_jobs_json(self, ui_service, capsys):
        client = ServiceClient(ui_service.url, tenant="cli")
        try:
            job = client.submit({"workload": "pi", "seed": 3})
        finally:
            client.close()
        assert main(["jobs", "--url", ui_service.url, "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert listing["queue_depth"] == 1
        assert [j["id"] for j in listing["jobs"]] == [job["id"]]
        assert listing["jobs"][0]["spec"]["seed"] == 3
        # and the human table renders the same job
        assert main(["jobs", "--url", ui_service.url]) == 0
        table = capsys.readouterr().out
        assert job["id"] in table
        assert "# queue depth: 1" in table

    def test_usage_json(self, ui_service, capsys):
        assert main(["usage", "--url", ui_service.url, "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == {}
        assert main(["usage", "--url", ui_service.url]) == 0
        assert "no metered usage" in capsys.readouterr().out

    def test_history_cli(self, ui_service, capsys):
        ui_service.recorder.sample_once()
        assert main(["history", "--url", ui_service.url,
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["meta"]["rounds"] == 1
        assert "queue.depth" in payload["history"]

        assert main(["history", "--url", ui_service.url,
                     "--prefix", "queue.depth"]) == 0
        out = capsys.readouterr().out
        assert "queue.depth" in out
        assert "round 1" in out

        assert main(["history", "--url", ui_service.url,
                     "--series", "queue.depth"]) == 0
        lines = [line for line in
                 capsys.readouterr().out.splitlines()
                 if not line.startswith("#")]
        assert len(lines) == 1  # "stamp value"
        assert len(lines[0].split()) == 2

    def test_history_cli_unknown_series_fails(self, ui_service,
                                              capsys):
        assert main(["history", "--url", ui_service.url,
                     "--series", "no.such.series"]) == 1
        assert "no series" in capsys.readouterr().err

    def test_cli_errors_cleanly_with_no_service(self, capsys):
        assert main(["history",
                     "--url", "http://127.0.0.1:9"]) == 2
        assert "error:" in capsys.readouterr().err


# -- over a dispatched job ----------------------------------------------------


class TestConsoleEndToEnd:
    @pytest.fixture(scope="class")
    def service(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("console-e2e")
        service = Service(str(root / "data"), ui=True,
                          history_interval=0).start()
        yield service
        service.stop()

    @pytest.fixture(scope="class")
    def done_job(self, service):
        client = ServiceClient(service.url, tenant="console")
        try:
            job = client.submit({"workload": "pi", "scale": "tiny",
                                 "experiments": 2, "seed": 17,
                                 "trace": True})
            return client.wait(job["id"], timeout=180)
        finally:
            client.close()

    def test_timeline_page_renders_svg_lanes(self, service,
                                             done_job):
        status, _, body = _get(
            service, f"/ui/jobs/{done_job['id']}/timeline")
        assert status == 200
        text = body.decode("utf-8")
        assert "<svg " in text
        assert "Span tree" in text
        assert "request " in text  # tree roots at the submit request
        payload = _island(body)
        assert payload["job"] == done_job["id"]
        assert payload["events"] > 0
        assert payload["otherData"]["timebase"] == "host"

    def test_report_page_inlines_the_markdown(self, service,
                                              done_job):
        status, _, body = _get(
            service, f"/ui/jobs/{done_job['id']}/report")
        assert status == 200
        text = body.decode("utf-8")
        assert "outcome" in text.lower()
        assert f"/v1/jobs/{done_job['id']}/report?format=html" in text

    def test_job_page_links_the_timeline(self, service, done_job):
        status, _, body = _get(service,
                               f"/ui/jobs/{done_job['id']}")
        assert status == 200
        assert f"/ui/jobs/{done_job['id']}/timeline" \
            in body.decode("utf-8")
        assert _island(body)["job"]["state"] == "done"

    def test_coverage_endpoint_returns_full_payload(self, service,
                                                    done_job):
        status, _, body = _get(
            service, f"/v1/jobs/{done_job['id']}/coverage")
        assert status == 200
        payload = json.loads(body)
        assert payload["job"] == done_job["id"]
        coverage = payload["coverage"]
        assert coverage["accounted"]["experiments"] == 2
        assert coverage["space"]["covered_sites"] <= \
            coverage["space"]["total"]
        assert set(coverage["heatmaps"]) == {
            "location", "bit", "time_decile", "register", "pc_region"}

    def test_coverage_page_renders_svg_heatmaps(self, service,
                                                done_job):
        status, _, body = _get(service, "/ui/coverage")
        assert status == 200
        text = body.decode("utf-8")
        assert "<svg " in text
        assert f"/v1/jobs/{done_job['id']}/coverage" in text
        payload = _island(body)
        assert payload["job"] == done_job["id"]
        assert payload["coverage"]["accounted"]["experiments"] == 2

    def test_coverage_page_unknown_job_is_404(self, service,
                                              done_job):
        status, _, _ = _get(service, "/ui/coverage?job=job-missing")
        assert status == 404

    def test_coverage_gauges_reach_history_and_metrics(self, service,
                                                       done_job):
        service.recorder.sample_once()
        client = ServiceClient(service.url)
        try:
            payload = client.history(prefix="coverage.")
        finally:
            client.close()
        key = f'coverage.covered_sites{{job="{done_job["id"]}"}}'
        assert key in payload["history"]
        assert payload["history"][key][-1][1] > 0
        status, _, body = _get(service, "/metrics")
        text = body.decode("utf-8")
        assert "coverage_covered_sites" in text
        assert "# HELP coverage_covered_sites" in text

    def test_usage_kips_gauge_reaches_history(self, service,
                                              done_job):
        service.recorder.sample_once()
        client = ServiceClient(service.url)
        try:
            payload = client.history(prefix="usage.kips")
        finally:
            client.close()
        assert 'usage.kips{tenant="console"}' in payload["history"]
        points = payload["history"]['usage.kips{tenant="console"}']
        assert points[-1][1] > 0

    def test_dispatcher_archives_finished_campaign(self, service,
                                                   done_job):
        """Completion feeds the campaign archive: the summary row is
        queryable and its digest names a stored object holding the
        canonical summary bytes."""
        rows = {row["job"]: row
                for row in service.queue.list_archive()}
        assert done_job["id"] in rows
        digest = rows[done_job["id"]]["summary_digest"]
        assert service.store.has(digest)
        summary = service.queue.archived_summary(done_job["id"])
        assert summary["experiments"] == 2

    def test_compare_page_matches_v1_compare(self, service,
                                             done_job):
        """The console page and /v1/compare render the same diff —
        a self-compare of the only finished job, verdict unchanged."""
        job_id = done_job["id"]
        status, _, body = _get(
            service, f"/ui/compare?base={job_id}&head={job_id}")
        assert status == 200
        island = _island(body)
        assert island["base"] == job_id
        assert island["head"] == job_id
        status, _, raw = _get(
            service, f"/v1/compare?base={job_id}&head={job_id}")
        assert status == 200
        assert island["compare"] == json.loads(raw)["compare"]
        assert island["compare"]["verdict"] == "unchanged"
        assert all(row["verdict"] == "unchanged" for row in
                   island["compare"]["outcomes"].values())
        text = body.decode("utf-8")
        assert "<svg " in text  # outcome bars render

    def test_compare_page_defaults_to_newest_jobs(self, service,
                                                  done_job):
        status, _, body = _get(service, "/ui/compare")
        assert status == 200
        island = _island(body)
        assert island["head"] in island["jobs"]
        assert island["compare"] is not None

    def test_compare_gauges_reach_metrics(self, service, done_job):
        job_id = done_job["id"]
        _get(service, f"/v1/compare?base={job_id}&head={job_id}")
        status, _, body = _get(service, "/metrics")
        text = body.decode("utf-8")
        assert "# HELP compare_verdict" in text
        assert f'base="{job_id}"' in text
