"""CPU-model tests: semantics, cross-model equivalence, O3 behaviour."""

import pytest

from repro.compiler import compile_source
from repro.sim import SimConfig, Simulator

from conftest import run_asm, run_minic

MODELS = ("atomic", "timing", "inorder", "o3")


CONTROL_HEAVY = """
def collatz(n) -> int:
    steps = 0
    while n != 1 and steps < 300:
        if n % 2 == 0:
            n = n // 2
        else:
            n = 3 * n + 1
        steps += 1
    return steps

def main():
    total = 0
    for i in range(2, 40):
        total += collatz(i)
    print_int(total)
    exit(0)
"""


class TestCrossModelEquivalence:
    """All four models must produce bit-identical architectural results
    (the gem5 property the paper's model-switching methodology relies
    on)."""

    @pytest.mark.parametrize("model", MODELS)
    def test_mixed_program_output(self, model, mixed_asm,
                                  mixed_golden_console):
        sim, result = run_asm(mixed_asm, model=model)
        assert result.status == "completed"
        assert sim.console_text() == mixed_golden_console

    @pytest.mark.parametrize("model", MODELS)
    def test_control_heavy_output(self, model):
        sim, result = run_minic(CONTROL_HEAVY, model=model)
        assert sim.process(0).exit_code == 0
        reference, _ = run_minic(CONTROL_HEAVY)
        assert sim.console_text() == reference.console_text()

    def test_committed_instruction_counts_match(self, mixed_asm):
        counts = set()
        for model in MODELS:
            sim, _ = run_asm(mixed_asm, model=model)
            counts.add(sim.core.committed)
        assert len(counts) == 1

    def test_final_register_state_matches(self, mixed_asm):
        finals = []
        for model in MODELS:
            sim, _ = run_asm(mixed_asm, model=model)
            finals.append(sim.core.arch.snapshot())
        assert all(f == finals[0] for f in finals)


class TestTimingBehaviour:
    def test_timing_slower_than_atomic(self, mixed_asm):
        atomic, _ = run_asm(mixed_asm, model="atomic")
        timing, _ = run_asm(mixed_asm, model="timing")
        assert timing.tick > atomic.tick

    def test_o3_faster_than_timing_on_big_loops(self):
        source = """
def main():
    s = 0
    for i in range(4000):
        s += i * 3 + 1
    print_int(s)
    exit(0)
"""
        timing, _ = run_minic(source, model="timing")
        o3, _ = run_minic(source, model="o3")
        assert o3.tick < timing.tick

    def test_o3_collects_mispredict_stats(self):
        sim, _ = run_minic(CONTROL_HEAVY, model="o3")
        assert sim.cpu.predictor.lookups > 0
        assert sim.cpu.predictor.mispredicts > 0
        assert sim.cpu.squashed_instructions > 0

    def test_predictor_learns_loop_branch(self):
        source = """
def main():
    s = 0
    for i in range(2000):
        s += 1
    print_int(s)
    exit(0)
"""
        sim, _ = run_minic(source, model="o3")
        predictor = sim.cpu.predictor
        assert predictor.mispredict_rate < 0.10


class TestTraps:
    UNMAPPED = """
        main:
            ldi t0, 0x70000000
            ldq t1, 0(t0)
            halt
    """

    @pytest.mark.parametrize("model", MODELS)
    def test_unmapped_load_crashes_process(self, model):
        sim, result = run_asm(self.UNMAPPED, model=model)
        process = sim.process(0)
        assert process.state.value == "crashed"
        assert "UnmappedAccess" in process.crash_reason

    @pytest.mark.parametrize("model", MODELS)
    def test_illegal_instruction_crashes(self, model):
        source = """
        main:
            .long 0x1C000000
        """
        # opcode 0x07 << 26 => illegal; craft via data-in-text trick.
        asm = "main:\n    ldi t0, 1\n    halt\n"
        sim, _ = run_asm(asm, model=model)
        assert sim.process(0).state.value != "crashed"

    def test_divide_by_zero_crashes(self):
        source = """
def main():
    a = 5
    b = 0
    print_int(a // b)
    exit(0)
"""
        sim, _ = run_minic(source)
        assert sim.process(0).state.value == "crashed"
        assert "ArithmeticTrap" in sim.process(0).crash_reason

    def test_misaligned_store_crashes(self):
        asm = """
        main:
            la t0, buf
            addq t0, 1, t0
            stq t1, 0(t0)
            halt
            .data
        buf: .space 16
        """
        sim, _ = run_asm(asm)
        assert "MisalignedAccess" in sim.process(0).crash_reason

    def test_store_to_text_segment_crashes(self):
        asm = """
        main:
            la t0, main
            stq t1, 0(t0)
            halt
        """
        sim, _ = run_asm(asm)
        assert sim.process(0).state.value == "crashed"

    def test_watchdog_reaps_infinite_loop(self):
        asm = "main:\nloop:\n    br loop\n"
        sim, result = run_asm(asm, max_instructions=5000)
        assert result.status == "limit"


class TestModelSwitching:
    def test_switch_o3_to_atomic_mid_run_preserves_output(self):
        asm = compile_source(CONTROL_HEAVY)
        reference, _ = run_asm(asm)
        sim = Simulator(SimConfig(cpu_model="o3"))
        sim.load(asm, "t")
        # Run a slice in O3, switch, finish in atomic.
        sim.run(max_instructions=3000)
        sim.switch_model("atomic")
        result = sim.run(max_instructions=3_000_000)
        assert result.status == "completed"
        assert sim.console_text() == reference.console_text()

    def test_switch_is_idempotent(self):
        sim = Simulator(SimConfig(cpu_model="atomic"))
        sim.load("main: halt\n", "t")
        sim.switch_model("atomic")
        assert sim.cpu.model_name == "atomic"


class TestO3DrainConsistency:
    """Regression: draining the O3 pipeline while the ROB head has
    executed (side effects applied) but not yet committed must retire
    that head, not discard it — otherwise the instruction re-executes
    after the flush and double-applies its effects."""

    def test_repeated_mid_run_switching_preserves_results(self):
        source = """
def main():
    s = 1
    for i in range(3000):
        s = s + (s >> 5) + i * 7
    print_int(s)
    exit(0)
"""
        asm = compile_source(source)
        reference, _ = run_asm(asm)
        sim = Simulator(SimConfig(cpu_model="o3"))
        sim.load(asm, "t")
        # Ping-pong between models many times mid-run; every switch
        # drains the pipeline at an arbitrary point.
        model = "atomic"
        for _ in range(30):
            result = sim.run(max_instructions=sim.instructions + 700)
            if result.status == "completed":
                break
            sim.switch_model(model)
            model = "o3" if model == "atomic" else "atomic"
        else:
            result = sim.run(max_instructions=3_000_000)
        assert sim.console_text() == reference.console_text()

    def test_preemption_drains_do_not_corrupt_o3(self):
        source = """
def main():
    total = 0
    for i in range(4000):
        total += i * i
    print_int(total)
    exit(0)
"""
        asm = compile_source(source)
        reference, _ = run_asm(asm)
        # Tiny quantum with two processes forces frequent drains.
        sim = Simulator(SimConfig(cpu_model="o3", quantum=97))
        sim.load(asm, "a")
        sim.load(asm, "b")
        result = sim.run(max_instructions=8_000_000)
        assert result.status == "completed"
        assert sim.process(0).console_text() == reference.console_text()
        assert sim.process(1).console_text() == reference.console_text()
