"""Tournament branch predictor unit tests."""

from repro.cpu.branch_pred import TournamentPredictor, _CounterTable
from repro.isa import encoding as enc, instructions as ins


def _cond_branch(disp=-1):
    return ins.decode(enc.encode_branch(ins.OP_BNE, 1, disp))


def _uncond(disp=4):
    return ins.decode(enc.encode_branch(ins.OP_BR, 31, disp))


def _jump():
    return ins.decode(enc.encode_memory(ins.OP_JMP, 26, 27, 0))


def _ret():
    return ins.decode(enc.encode_memory(ins.OP_JMP, 31, 26, 0))


def _bsr():
    return ins.decode(enc.encode_branch(ins.OP_BSR, 26, 8))


class TestCounterTable:
    def test_saturation(self):
        table = _CounterTable(4, init=0)
        for _ in range(10):
            table.update(0, True)
        assert table.counters[0] == 3
        for _ in range(10):
            table.update(0, False)
        assert table.counters[0] == 0

    def test_threshold(self):
        table = _CounterTable(4, init=1)
        assert not table.taken(0)
        table.update(0, True)
        assert table.taken(0)


class TestPrediction:
    def test_learns_always_taken_loop(self):
        predictor = TournamentPredictor()
        pc = 0x1000
        branch = _cond_branch()
        target = pc + 4 + 4 * branch.disp
        # Warmup covers the global-history register saturating to
        # all-ones (12 bits) plus counter training.
        for _ in range(40):
            _, predicted = predictor.predict(pc, branch)
            predictor.update(pc, branch, True, target, predicted)
        taken, predicted = predictor.predict(pc, branch)
        assert taken and predicted == target

    def test_learns_never_taken(self):
        predictor = TournamentPredictor()
        pc = 0x2000
        branch = _cond_branch()
        for _ in range(8):
            _, predicted = predictor.predict(pc, branch)
            predictor.update(pc, branch, False, pc + 4, predicted)
        taken, predicted = predictor.predict(pc, branch)
        assert not taken and predicted == pc + 4

    def test_learns_alternating_pattern_via_history(self):
        predictor = TournamentPredictor()
        pc = 0x3000
        branch = _cond_branch()
        target = pc + 4 + 4 * branch.disp
        outcomes = [True, False] * 64
        correct_tail = 0
        for index, taken in enumerate(outcomes):
            _, predicted = predictor.predict(pc, branch)
            actual = target if taken else pc + 4
            if index >= 100 and predicted == actual:
                correct_tail += 1
            predictor.update(pc, branch, taken, actual, predicted)
        assert correct_tail >= 24   # of the last 28: history learned

    def test_unconditional_branch_always_taken(self):
        predictor = TournamentPredictor()
        taken, target = predictor.predict(0x100, _uncond(disp=4))
        assert taken and target == 0x100 + 4 + 16

    def test_jump_uses_btb_after_training(self):
        predictor = TournamentPredictor()
        jump = _jump()
        _, first = predictor.predict(0x500, jump)
        assert first == 0x504       # cold BTB falls through
        predictor.update(0x500, jump, True, 0x9000, first)
        predictor.ras.clear()
        _, second = predictor.predict(0x500, jump)
        assert second == 0x9000

    def test_return_address_stack(self):
        predictor = TournamentPredictor()
        predictor.predict(0x100, _bsr())      # pushes 0x104
        taken, target = predictor.predict(0x800, _ret())
        assert taken and target == 0x104

    def test_ras_depth_bounded(self):
        predictor = TournamentPredictor(ras_depth=4)
        for index in range(10):
            predictor.predict(0x100 + 8 * index, _bsr())
        assert len(predictor.ras) == 4

    def test_btb_capacity_bounded(self):
        predictor = TournamentPredictor(btb_size=8)
        branch = _cond_branch()
        for index in range(20):
            pc = 0x1000 + 4 * index
            predictor.update(pc, branch, True, 0x2000, 0)
        assert len(predictor.btb) <= 8

    def test_mispredict_accounting(self):
        predictor = TournamentPredictor()
        branch = _cond_branch()
        _, predicted = predictor.predict(0x100, branch)
        predictor.update(0x100, branch, True, 0xDEAD00, predicted)
        assert predictor.mispredicts >= 1
        assert 0.0 <= predictor.mispredict_rate <= 1.0

    def test_snapshot_restore_roundtrip(self):
        predictor = TournamentPredictor()
        branch = _cond_branch()
        for index in range(16):
            _, predicted = predictor.predict(0x100, branch)
            predictor.update(0x100, branch, index % 2 == 0,
                             0x200, predicted)
        snap = predictor.snapshot()
        other = TournamentPredictor()
        other.restore(snap)
        assert other.global_history == predictor.global_history
        assert other.btb == predictor.btb
        assert other.mispredicts == predictor.mispredicts
