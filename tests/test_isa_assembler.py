"""Assembler tests: syntax, labels, directives, pseudo-instructions."""

import pytest

from repro.isa import assemble, decode, disassemble_word
from repro.isa.assembler import AssemblyError


def words_of(source, **kwargs):
    return assemble(source, **kwargs).words()


class TestBasics:
    def test_simple_program_layout(self):
        img = assemble("""
            .text
        main:
            nop
            halt
            .data
        x:  .quad 42
        """)
        assert img.num_instructions == 2
        assert img.symbols["main"] == img.text_base
        assert img.symbols["x"] == img.data_base
        assert img.entry == img.symbols["main"]

    def test_comments_stripped(self):
        img = assemble("main:\n  nop  # comment\n  nop ; other\n")
        assert img.num_instructions == 2

    def test_label_on_same_line(self):
        img = assemble("main: nop\nend: halt\n")
        assert img.symbols["end"] == img.text_base + 4

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError, match="duplicate"):
            assemble("a: nop\na: nop\n")

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            assemble("main: frobnicate r1\n")

    def test_line_numbers_in_errors(self):
        with pytest.raises(AssemblyError, match="line 3"):
            assemble("main:\n  nop\n  bogus\n")


class TestInstructions:
    def test_operate_register_and_literal(self):
        w = words_of("main: addq r1, r2, r3\n")[0]
        d = decode(w)
        assert (d.name, d.ra, d.rb, d.rc) == ("addq", 1, 2, 3)
        w = words_of("main: addq r1, 200, r3\n")[0]
        assert decode(w).lit == 200

    def test_literal_out_of_range(self):
        with pytest.raises(AssemblyError, match="literal"):
            assemble("main: addq r1, 256, r3\n")

    def test_memory_operands(self):
        w = words_of("main: ldq t0, -8(sp)\n")[0]
        d = decode(w)
        assert (d.name, d.ra, d.rb, d.disp) == ("ldq", 1, 30, -8)
        w = words_of("main: stq t0, (sp)\n")[0]
        assert decode(w).disp == 0

    def test_branches_resolve_labels(self):
        img = assemble("""
        main:
            beq v0, done
            nop
        done:
            halt
        """)
        d = decode(img.words()[0])
        assert d.disp == 1   # skip one instruction

    def test_backward_branch(self):
        img = assemble("""
        main:
        loop:
            subq t0, 1, t0
            bgt t0, loop
            halt
        """)
        d = decode(img.words()[1])
        assert d.disp == -2

    def test_fp_instructions(self):
        w = words_of("main: addt f1, f2, f3\n")[0]
        d = decode(w)
        assert (d.name, d.ra, d.rb, d.rc) == ("addt", 1, 2, 3)
        w = words_of("main: sqrtt f2, f3\n")[0]
        d = decode(w)
        assert d.name == "sqrtt" and d.rb == 2 and d.rc == 3

    def test_jumps(self):
        w = words_of("main: jsr ra, (pv)\n")[0]
        d = decode(w)
        assert (d.kind, d.ra, d.rb) == (decode(w).kind, 26, 27)
        w = words_of("main: ret\n")[0]
        d = decode(w)
        assert d.ra == 31 and d.rb == 26


class TestPseudoInstructions:
    def test_ldi_expands_to_two_words(self):
        img = assemble("main: ldi t0, 123456\n")
        assert img.num_instructions == 2

    def test_ldi_value_roundtrip_via_parts(self):
        for value in (0, 1, -1, 0x7FFF, -0x8000, 123456789, -123456789):
            img = assemble(f"main: ldi t0, {value}\n")
            ldah, lda = [decode(w) for w in img.words()]
            assert (ldah.disp + lda.disp) & ((1 << 64) - 1) == \
                value & ((1 << 64) - 1)

    def test_ldi_range_check(self):
        with pytest.raises(AssemblyError):
            assemble(f"main: ldi t0, {1 << 40}\n")

    def test_la_materialises_symbol_address(self):
        img = assemble("""
        main:
            la t0, buf
            halt
            .data
        buf: .space 8
        """)
        ldah, lda = [decode(w) for w in img.words()[:2]]
        assert ldah.disp + lda.disp == img.symbols["buf"]

    def test_mov_clr_not_negq(self):
        names = ["mov t0, t1", "clr t2", "not t0, t1", "negq t0, t1",
                 "fmov f1, f2", "fneg f1, f2", "sextl t0, t1"]
        img = assemble("main:\n" + "\n".join("  " + n for n in names))
        decoded = [decode(w) for w in img.words()]
        assert decoded[0].name == "bis"
        assert decoded[1].name == "bis" and decoded[1].rc == 3  # t2=r3
        assert decoded[2].name == "ornot"
        assert decoded[3].name == "subq" and decoded[3].ra == 31
        assert decoded[4].name == "cpys"
        assert decoded[5].name == "cpysn"
        assert decoded[6].name == "addl"

    def test_fi_pseudo_ops(self):
        img = assemble("main:\n fi_activate\n fi_read_init\n")
        d0, d1 = [decode(w) for w in img.words()]
        assert d0.name == "fi_activate_inst"
        assert d1.name == "fi_read_init_all"


class TestDirectives:
    def test_quad_long_byte_double(self):
        img = assemble("""
        main: nop
            .data
        a:  .quad -1, 2
        b:  .long 7
        c:  .byte 1, 2, 3
        d:  .align 3
        e:  .double 1.5
        """)
        assert img.symbols["b"] - img.symbols["a"] == 16
        assert img.symbols["c"] - img.symbols["b"] == 4
        assert img.symbols["e"] % 8 == 0
        assert len(img.data) == img.symbols["e"] - img.data_base + 8

    def test_space_and_asciiz(self):
        img = assemble("""
        main: nop
            .data
        s:  .asciiz "hi\\n"
        t:  .space 16
        """)
        start = img.symbols["s"] - img.data_base
        assert img.data[start:start + 4] == b"hi\n\x00"

    def test_instructions_outside_text_rejected(self):
        with pytest.raises(AssemblyError):
            assemble(".data\nmain: nop\n")

    def test_data_directive_in_text_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("main: nop\n.quad 5\n")


class TestRoundTrip:
    def test_disassemble_reassembles_equal(self):
        source = """
        main:
            lda sp, -32(sp)
            stq ra, 0(sp)
            addq r1, r2, r3
            addq r1, 77, r3
            and r4, r5, r6
            sll r4, 3, r6
            mulq r7, r8, r9
            ldq t0, 8(sp)
            stt f2, 16(sp)
            addt f1, f2, f3
            cmplt r1, r2, r3
            cmoveq r1, r2, r3
            jsr ra, (pv)
            ret
            halt
        """
        img = assemble(source)
        for index, word in enumerate(img.words()):
            text = disassemble_word(word, img.text_base + 4 * index)
            img2 = assemble(f"main: {text}\n",
                            text_base=img.text_base + 4 * index)
            assert img2.words()[0] == word, text
