"""Bit-level tests of the Alpha instruction formats (Table I)."""

import pytest

from repro.isa import encoding as enc
from repro.isa.encoding import Field, Format


class TestFieldExtraction:
    def test_opcode_occupies_top_six_bits(self):
        word = enc.encode_operate(0x10, 1, 2, 0x20, 3)
        assert enc.opcode_of(word) == 0x10
        assert enc.opcode_of(0xFFFFFFFF) == 0x3F

    def test_register_fields(self):
        word = enc.encode_operate(0x10, 5, 9, 0x20, 30)
        assert enc.ra_of(word) == 5
        assert enc.rb_of(word) == 9
        assert enc.rc_of(word) == 30

    def test_branch_displacement_sign_extension(self):
        word = enc.encode_branch(0x39, 1, -5)
        assert enc.branch_disp_of(word) == -5
        word = enc.encode_branch(0x39, 1, 12345)
        assert enc.branch_disp_of(word) == 12345

    def test_memory_displacement_sign_extension(self):
        word = enc.encode_memory(0x29, 1, 2, -32768)
        assert enc.mem_disp_of(word) == -32768
        word = enc.encode_memory(0x29, 1, 2, 32767)
        assert enc.mem_disp_of(word) == 32767

    def test_literal_form_flag_and_value(self):
        word = enc.encode_operate_lit(0x10, 1, 255, 0x20, 2)
        assert enc.is_literal_form(word)
        assert enc.literal_of(word) == 255
        word = enc.encode_operate(0x10, 1, 2, 0x20, 3)
        assert not enc.is_literal_form(word)

    def test_pal_function_26_bits(self):
        word = enc.encode_palcode(0x00, 0x83)
        assert enc.pal_func_of(word) == 0x83
        word = enc.encode_palcode(0x00, (1 << 26) - 1)
        assert enc.pal_func_of(word) == (1 << 26) - 1

    def test_fp_function_11_bits(self):
        word = enc.encode_fp_operate(0x16, 1, 2, 0x7FF, 3)
        assert enc.fp_func_of(word) == 0x7FF


class TestEncodeRangeChecks:
    def test_opcode_out_of_range(self):
        with pytest.raises(ValueError):
            enc.encode_operate(0x40, 0, 0, 0, 0)

    def test_register_out_of_range(self):
        with pytest.raises(ValueError):
            enc.encode_operate(0x10, 32, 0, 0, 0)

    def test_branch_disp_out_of_range(self):
        with pytest.raises(ValueError):
            enc.encode_branch(0x39, 0, 1 << 20)
        with pytest.raises(ValueError):
            enc.encode_branch(0x39, 0, -(1 << 20) - 1)

    def test_literal_out_of_range(self):
        with pytest.raises(ValueError):
            enc.encode_operate_lit(0x10, 0, 256, 0, 0)


class TestFieldOfBit:
    """The classification driving the Table I fetch-fault analysis."""

    def test_opcode_bits_any_format(self):
        for fmt in Format:
            for bit in range(26, 32):
                assert enc.field_of_bit(fmt, bit) is Field.OPCODE

    def test_branch_format_fields(self):
        assert enc.field_of_bit(Format.BRANCH, 23) is Field.RA
        assert enc.field_of_bit(Format.BRANCH, 20) is Field.DISPLACEMENT
        assert enc.field_of_bit(Format.BRANCH, 0) is Field.DISPLACEMENT

    def test_memory_format_fields(self):
        assert enc.field_of_bit(Format.MEMORY, 22) is Field.RA
        assert enc.field_of_bit(Format.MEMORY, 17) is Field.RB
        assert enc.field_of_bit(Format.MEMORY, 15) is Field.DISPLACEMENT

    def test_operate_register_form_has_unused_bits(self):
        word = enc.encode_operate(0x10, 1, 2, 0x20, 3)
        assert enc.field_of_bit(Format.OPERATE, 14, word) is Field.UNUSED
        assert enc.field_of_bit(Format.OPERATE, 13, word) is Field.UNUSED
        assert enc.field_of_bit(Format.OPERATE, 17, word) is Field.RB
        assert enc.field_of_bit(Format.OPERATE, 12, word) is Field.LIT_FLAG
        assert enc.field_of_bit(Format.OPERATE, 8, word) is Field.FUNCTION
        assert enc.field_of_bit(Format.OPERATE, 2, word) is Field.RC

    def test_operate_literal_form_repurposes_bits(self):
        word = enc.encode_operate_lit(0x10, 1, 200, 0x20, 3)
        for bit in range(13, 21):
            assert enc.field_of_bit(Format.OPERATE, bit, word) \
                is Field.LITERAL

    def test_fp_operate_fields(self):
        assert enc.field_of_bit(Format.FP_OPERATE, 10) is Field.FUNCTION
        assert enc.field_of_bit(Format.FP_OPERATE, 3) is Field.RC

    def test_palcode_function_bits(self):
        assert enc.field_of_bit(Format.PALCODE, 0) is Field.PAL_FUNCTION
        assert enc.field_of_bit(Format.PALCODE, 25) is Field.PAL_FUNCTION

    def test_bit_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            enc.field_of_bit(Format.MEMORY, 32)
        with pytest.raises(ValueError):
            enc.field_of_bit(Format.MEMORY, -1)
