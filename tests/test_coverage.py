"""Fault-space coverage analytics tests (repro.analysis.coverage).

The acceptance invariants the module guarantees:

* accounted experiments always sum to the campaign's experiment count;
* covered-site counts never exceed the enumerated space size;
* the JSON payload is byte-deterministic for the same inputs;
* the enumerated space agrees exactly with
  ``SEUGenerator.fault_space_size()`` — on every CPU model.
"""

import json
import pickle
import types

import pytest

from repro.analysis.coverage import (
    ConvergenceTracker,
    FaultSpaceMap,
    coverage_from_share,
    coverage_gauges,
    coverage_summary,
    render_coverage_markdown,
    render_coverage_svg,
    render_coverage_tables,
    render_heatmap_table,
)
from repro.analysis.liveness import SiteVerdict
from repro.campaign.generator import (
    DEFAULT_LOCATIONS,
    PrunedGenerator,
    SEUGenerator,
    WindowProfile,
)
from repro.core import LocationKind

PROFILE = WindowProfile(committed=100, ticks=5000)

OUTCOMES = ("sdc", "crashed", "correct", "non_propagated")


def synthetic_results(count=40, seed=7, committed=100,
                      weights=False):
    """Deterministic share-style result dicts from a real generator."""
    generator = SEUGenerator(WindowProfile(committed=committed,
                                           ticks=committed * 50),
                             seed=seed)
    results = []
    for index in range(count):
        fault = generator.generate()
        results.append({
            "fault_file": fault.describe(),
            "outcome": OUTCOMES[index % len(OUTCOMES)],
            "weight": 1.0 + (index % 3 if weights else 0),
            "predicted": weights and index % 5 == 0,
            "time_fraction": fault.time / committed,
            "injection_pc": 0x1000 + (index % 11) * 4,
        })
    return results


def populate(space, results):
    for entry in results:
        space.account(entry)
    return space


class TestSpaceEnumeration:
    def test_total_matches_generator(self):
        space = FaultSpaceMap(window=PROFILE)
        generator = SEUGenerator(PROFILE, seed=0)
        assert space.total_space_size() == generator.fault_space_size()

    def test_per_location_sums_to_total(self):
        space = FaultSpaceMap(window=PROFILE)
        per_location = space.space_per_location()
        assert len(per_location) == len(DEFAULT_LOCATIONS)
        assert sum(per_location.values()) == space.total_space_size()

    def test_bare_int_window(self):
        assert FaultSpaceMap(window=100).total_space_size() == \
            FaultSpaceMap(window=PROFILE).total_space_size()

    def test_unknown_window(self):
        space = FaultSpaceMap(window=None)
        assert space.total_space_size() is None
        assert space.space_per_location() is None
        # Accounting still works; covered counts are absolute.
        populate(space, synthetic_results(10))
        assert space.covered_sites() == 10
        payload = space.as_dict()
        assert payload["space"]["total"] is None
        assert payload["space"]["covered_fraction"] is None

    @pytest.mark.parametrize("cpu", ("atomic", "timing", "inorder",
                                     "o3"))
    def test_agreement_across_cpu_models(self, cpu):
        # The map must enumerate exactly the population the generator
        # samples, for the FI window each CPU model actually produces.
        from repro.campaign import CampaignRunner
        from repro.sim import SimConfig
        from repro.workloads import build
        runner = CampaignRunner(build("pi", "tiny"),
                                SimConfig(cpu_model=cpu))
        profile = runner.golden.profile
        space = FaultSpaceMap(window=profile)
        generator = SEUGenerator(profile, seed=0)
        assert space.total_space_size() == generator.fault_space_size()


class TestAccounting:
    def test_accounted_sums_to_experiment_count(self):
        results = synthetic_results(40, weights=True)
        space = populate(FaultSpaceMap(window=PROFILE), results)
        assert space.accounted == len(results)
        assert space.executed + space.predicted == len(results)
        payload = space.as_dict()
        assert payload["accounted"]["experiments"] == len(results)
        assert payload["convergence"]["experiments"] == len(results)

    def test_covered_never_exceeds_space(self):
        space = populate(FaultSpaceMap(window=PROFILE),
                         synthetic_results(200))
        total = space.total_space_size()
        assert space.covered_sites() <= total
        payload = space.as_dict()
        assert payload["space"]["covered_sites"] <= total
        for row in payload["space"]["per_location"].values():
            assert row["covered"] <= row["size"]

    def test_repeat_site_not_double_counted(self):
        results = synthetic_results(1) * 5
        space = populate(FaultSpaceMap(window=PROFILE), results)
        assert space.accounted == 5
        assert space.covered_sites() == 1

    def test_unparseable_fault_still_counted(self):
        space = FaultSpaceMap(window=PROFILE)
        assert space.account({"outcome": "sdc",
                              "fault_file": "not a fault"}) is False
        assert space.accounted == 1
        assert space.covered_sites() == 0
        assert space.as_dict()["accounted"]["experiments"] == 1

    def test_weights_enter_mass_not_sites(self):
        # A class representative with weight 3 stands for 3 sites'
        # worth of estimator mass but visits only its own site.
        entry = synthetic_results(1)[0]
        entry["weight"] = 3.0
        space = populate(FaultSpaceMap(window=PROFILE), [entry])
        assert space.covered_sites() == 1
        assert space.sampled_weight == 3.0

    def test_register_dimension_only_for_regfiles(self):
        results = synthetic_results(120)
        space = populate(FaultSpaceMap(window=PROFILE), results)
        labels = [label for label, _ in space.heatmap("register")]
        assert labels  # regfile faults exist in 120 draws
        assert all(label.startswith("r") for label in labels)

    def test_experiment_result_objects_accepted(self):
        from repro.campaign.runner import ExperimentResult
        fault = SEUGenerator(PROFILE, seed=11).generate()
        result = ExperimentResult(
            fault=fault, outcome="sdc", injected=True, propagated=True,
            crash_reason=None, instructions=100, ticks=500,
            wall_seconds=0.1, console="",
            time_fraction=fault.time / PROFILE.committed)
        space = FaultSpaceMap(window=PROFILE)
        assert space.account(result) is True
        assert space.covered_sites() == 1


class TestConvergence:
    def test_empty_tracker(self):
        tracker = ConvergenceTracker()
        assert tracker.max_half_width() == 1.0
        assert tracker.margin_reached_at is None
        assert tracker.effective_n == 0.0

    def test_half_width_shrinks_and_margin_latches(self):
        tracker = ConvergenceTracker(confidence=0.95, margin=0.2)
        widths = []
        for _ in range(120):
            tracker.add("sdc")
            widths.append(tracker.max_half_width())
        assert widths[-1] < widths[0]
        assert tracker.margin_reached_at is not None
        # The latch keeps the first crossing even as n grows.
        first = tracker.margin_reached_at
        tracker.add("sdc")
        assert tracker.margin_reached_at == first

    def test_kish_effective_n_equal_weights(self):
        tracker = ConvergenceTracker()
        for _ in range(10):
            tracker.add("sdc", weight=2.0)
        assert tracker.effective_n == pytest.approx(10.0)

    def test_unequal_weights_shrink_effective_n(self):
        tracker = ConvergenceTracker()
        for weight in (1.0, 1.0, 8.0):
            tracker.add("sdc", weight=weight)
        assert tracker.effective_n < 3.0

    def test_history_downsampled(self):
        tracker = ConvergenceTracker()
        for _ in range(500):
            tracker.add("sdc")
        payload = tracker.as_dict(history_points=32)
        assert len(payload["history"]) == 32
        assert payload["history"][-1][0] == 500

    def test_rates_sum_to_one(self):
        tracker = ConvergenceTracker()
        for outcome in ("sdc", "sdc", "crashed", "correct"):
            tracker.add(outcome)
        rates = tracker.as_dict()["rates"]
        assert sum(row["rate"] for row in rates.values()) == \
            pytest.approx(1.0)
        for row in rates.values():
            assert row["ci_low"] <= row["rate"] <= row["ci_high"]


class TestDeterminism:
    def test_payload_byte_identical(self):
        results = synthetic_results(60, weights=True)
        a = populate(FaultSpaceMap(window=PROFILE), results).as_dict()
        b = populate(FaultSpaceMap(window=PROFILE), results).as_dict()
        assert json.dumps(a, sort_keys=True) == \
            json.dumps(b, sort_keys=True)

    def test_renderers_deterministic(self):
        payload = populate(FaultSpaceMap(window=PROFILE),
                           synthetic_results(60)).as_dict()
        for render in (render_coverage_tables,
                       render_coverage_markdown):
            assert render(payload) == render(payload)
        for dimension in ("location", "bit", "time_decile",
                          "register", "pc_region"):
            assert render_coverage_svg(payload, dimension) == \
                render_coverage_svg(payload, dimension)


class TestRenderers:
    @pytest.fixture(scope="class")
    def payload(self):
        return populate(FaultSpaceMap(window=PROFILE),
                        synthetic_results(60, weights=True)).as_dict()

    def test_tables_mention_every_dimension(self, payload):
        text = render_coverage_tables(payload)
        for title in ("fault location", "bit position",
                      "injection-cycle decile",
                      "destination register", "PC region"):
            assert title in text

    def test_heatmap_table_has_wilson_cells(self, payload):
        text = render_heatmap_table(payload, "location")
        assert "[" in text and "%" in text

    def test_markdown_has_sections(self, payload):
        text = render_coverage_markdown(payload, name="demo")
        assert text.startswith("# Fault-space coverage: demo")
        assert "Wilson intervals" in text
        assert "| location |" in text

    def test_svg_structure(self, payload):
        svg = render_coverage_svg(payload, "bit")
        assert svg.startswith("<svg ")
        assert svg.endswith("</svg>")
        assert "<title>" in svg          # CI tooltip hook
        assert "timestamp" not in svg

    def test_svg_empty_dimension(self):
        payload = FaultSpaceMap(window=PROFILE).as_dict()
        svg = render_coverage_svg(payload, "register")
        assert "no samples" in svg

    def test_gauges_numeric_and_prefixed(self, payload):
        gauges = coverage_gauges(payload)
        assert all(name.startswith("coverage.") for name in gauges)
        assert all(isinstance(value, (int, float))
                   and value is not None
                   for value in gauges.values())
        assert gauges["coverage.accounted"] == 60
        assert "coverage.outcome_rate.sdc" in gauges

    def test_summary_drops_bulk(self, payload):
        summary = coverage_summary(payload)
        assert "heatmaps" not in summary
        assert "history" not in summary["convergence"]
        assert summary["space"] == payload["space"]


def write_share(tmp_path, results, committed=None):
    (tmp_path / "results").mkdir(parents=True, exist_ok=True)
    for index, entry in enumerate(results):
        path = tmp_path / "results" / f"exp_{index:04d}.json"
        path.write_text(json.dumps(entry))
    if committed is not None:
        golden = types.SimpleNamespace(
            profile=WindowProfile(committed=committed,
                                  ticks=committed * 50))
        (tmp_path / "golden.pkl").write_bytes(pickle.dumps(golden))
    return str(tmp_path)


class TestShareLoading:
    def test_window_from_golden_pickle(self, tmp_path):
        share = write_share(tmp_path, synthetic_results(10),
                            committed=100)
        space = coverage_from_share(share)
        assert space.window == 100
        assert space.accounted == 10

    def test_window_inferred_from_fractions(self, tmp_path):
        share = write_share(tmp_path, synthetic_results(30,
                                                        committed=80))
        space = coverage_from_share(share)
        assert space.window == 80

    def test_share_json_byte_identical(self, tmp_path):
        results = synthetic_results(25, weights=True)
        share_a = write_share(tmp_path / "a", results, committed=100)
        share_b = write_share(tmp_path / "b", results, committed=100)
        a = json.dumps(coverage_from_share(share_a).as_dict(),
                       sort_keys=True)
        b = json.dumps(coverage_from_share(share_b).as_dict(),
                       sort_keys=True)
        assert a == b

    def test_empty_share(self, tmp_path):
        space = coverage_from_share(str(tmp_path))
        assert space.accounted == 0
        payload = space.as_dict()
        assert payload["convergence"]["max_half_width"] == 1.0
        assert not payload["convergence"]["margin_reached"]


class MaskEverything:
    """Liveness stub: every candidate site is provably masked."""

    def classify(self, fault):
        return SiteVerdict(masked=True, reason="dead_register",
                           propagated=False, injected=True)


class TestGeneratorEdgeCases:
    """Satellite: sampling/generator edges the coverage map leans on."""

    def test_empty_fault_space_after_pruning(self):
        generator = SEUGenerator(PROFILE, seed=3)
        plan = PrunedGenerator(generator, MaskEverything()).plan(20)
        assert plan.runs == []
        assert len(plan.predicted) == 20
        assert plan.experiments == 0
        # Coverage over the all-predicted expansion still reconciles.
        from repro.campaign.results import expand_pruned
        results = expand_pruned(plan, [], window=PROFILE.committed)
        space = populate(FaultSpaceMap(window=PROFILE),
                         [r.as_dict() for r in results])
        assert space.accounted == 20
        assert space.predicted == 20
        assert space.executed == 0

    def test_single_site_campaign(self):
        profile = WindowProfile(committed=1, ticks=50)
        generator = SEUGenerator(profile, seed=1,
                                 locations=(LocationKind.DECODE,))
        space = FaultSpaceMap(window=profile)
        faults = generator.batch(10)
        assert all(fault.time == 1 for fault in faults)
        for fault in faults:
            space.account({"fault_file": fault.describe(),
                           "outcome": "correct",
                           "time_fraction": 1.0})
        # DECODE is 5 bits x 1 cycle: at most 5 distinct sites, and
        # pinning locations does not change the enumerated total.
        assert space.covered_sites() <= 5
        assert space.total_space_size() == \
            SEUGenerator(profile, seed=0).fault_space_size()

    def test_sampling_degenerate_inputs(self):
        from repro.campaign.sampling import (
            kish_effective_sample_size,
            weighted_proportion_confidence_interval,
        )
        assert weighted_proportion_confidence_interval(
            0.0, 0.0, 0.0) == (0.0, 1.0)
        assert weighted_proportion_confidence_interval(
            1.0, 2.0, 0.0) == (0.0, 1.0)
        assert kish_effective_sample_size([]) == 0.0
        assert kish_effective_sample_size([2.0] * 7) == \
            pytest.approx(7.0)
