"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.compiler import compile_source
from repro.core import FaultInjector
from repro.sim import SimConfig, Simulator


def run_asm(asm: str, model: str = "atomic", faults_text: str = "",
            max_instructions: int = 2_000_000, with_injector: bool = True,
            config: SimConfig | None = None):
    """Assemble-load-run helper; returns (sim, run_result)."""
    injector = FaultInjector.from_text(faults_text) if with_injector \
        else None
    sim = Simulator(config or SimConfig(cpu_model=model),
                    injector=injector)
    sim.load(asm, "test")
    result = sim.run(max_instructions=max_instructions)
    return sim, result


def run_minic(source: str, model: str = "atomic", faults_text: str = "",
              max_instructions: int = 2_000_000,
              with_injector: bool = True,
              config: SimConfig | None = None):
    """Compile-load-run helper for MiniC sources."""
    return run_asm(compile_source(source), model=model,
                   faults_text=faults_text,
                   max_instructions=max_instructions,
                   with_injector=with_injector, config=config)


# A tiny program exercising ALU, memory, branches, calls and FP.
MIXED_PROGRAM = """
A = iarray(8)

def accumulate(n) -> int:
    total = 0
    for i in range(n):
        A[i % 8] = A[i % 8] + i
        total += A[i % 8]
    return total

def froot(x: float) -> float:
    return sqrt(x) + 0.5

def main():
    t = accumulate(25)
    print_int(t)
    print_char(10)
    print_float(froot(2.25))
    print_char(10)
    exit(0)
"""


@pytest.fixture(scope="session")
def mixed_asm() -> str:
    return compile_source(MIXED_PROGRAM)


@pytest.fixture(scope="session")
def mixed_golden_console(mixed_asm) -> str:
    sim, result = run_asm(mixed_asm)
    assert result.status == "completed"
    return sim.console_text()
