"""Fault model and behaviour tests (Section III.A)."""

from repro.core import (
    Behavior,
    BehaviorKind,
    Fault,
    LocationKind,
    PERMANENT,
    Stage,
    TimeMode,
)


class TestBehaviors:
    def test_immediate_assigns_value(self):
        behavior = Behavior(BehaviorKind.IMMEDIATE, operand=0xDEAD)
        assert behavior.apply(12345) == 0xDEAD

    def test_immediate_masks_to_width(self):
        behavior = Behavior(BehaviorKind.IMMEDIATE, operand=0x1FF)
        assert behavior.apply(0, width=8) == 0xFF

    def test_xor_with_constant(self):
        behavior = Behavior(BehaviorKind.XOR, operand=0b1010)
        assert behavior.apply(0b0110) == 0b1100

    def test_single_bit_flip(self):
        behavior = Behavior(BehaviorKind.FLIP, bits=(21,))
        assert behavior.apply(0) == 1 << 21
        assert behavior.apply(1 << 21) == 0

    def test_multiple_bit_flips(self):
        behavior = Behavior(BehaviorKind.FLIP, bits=(0, 1, 63))
        assert behavior.apply(0) == (1 << 63) | 3

    def test_flip_beyond_width_is_ignored(self):
        behavior = Behavior(BehaviorKind.FLIP, bits=(40,))
        assert behavior.apply(0, width=32) == 0

    def test_all_zero_and_all_one(self):
        assert Behavior(BehaviorKind.ALL_ZERO).apply(0xFF) == 0
        assert Behavior(BehaviorKind.ALL_ONE).apply(0, width=32) == \
            0xFFFFFFFF

    def test_flip_is_involution(self):
        behavior = Behavior(BehaviorKind.FLIP, bits=(7, 13))
        value = 0x123456789ABCDEF0
        assert behavior.apply(behavior.apply(value)) == value


class TestFaultDescribe:
    def test_register_fault_round_trip_text(self):
        fault = Fault(location=LocationKind.INT_REG,
                      time_mode=TimeMode.INSTRUCTIONS, time=2457,
                      behavior=Behavior(BehaviorKind.FLIP, bits=(21,)),
                      thread_id=0, cpu="system.cpu1", reg_index=1)
        text = fault.describe()
        assert "RegisterInjectedFault" in text
        assert "Inst:2457" in text
        assert "Flip:21" in text
        assert "system.cpu1" in text
        assert text.endswith("int 1")

    def test_stage_mapping(self):
        cases = {
            LocationKind.FETCH: Stage.FETCH,
            LocationKind.DECODE: Stage.DECODE,
            LocationKind.EXECUTE: Stage.EXECUTE,
            LocationKind.MEM: Stage.MEM,
            LocationKind.INT_REG: Stage.REGFILE,
            LocationKind.FP_REG: Stage.REGFILE,
            LocationKind.PC: Stage.REGFILE,
        }
        for location, stage in cases.items():
            fault = Fault(location=location,
                          time_mode=TimeMode.INSTRUCTIONS, time=1,
                          behavior=Behavior(BehaviorKind.ALL_ZERO))
            assert fault.stage is stage

    def test_permanent_occ_renders(self):
        fault = Fault(location=LocationKind.PC,
                      time_mode=TimeMode.TICKS, time=10,
                      behavior=Behavior(BehaviorKind.ALL_ONE,
                                        occ=PERMANENT))
        assert "occ:permanent" in fault.describe()
        assert "Tick:10" in fault.describe()

    def test_decode_fault_describe(self):
        fault = Fault(location=LocationKind.DECODE,
                      time_mode=TimeMode.INSTRUCTIONS, time=5,
                      behavior=Behavior(BehaviorKind.FLIP, bits=(2,)),
                      operand_role="dst", operand_index=1)
        assert fault.describe().endswith("dst 1")
