"""Second round of property-based tests: assembler, fault parser,
campaign generator and checkpoint determinism."""

from hypothesis import given, settings, strategies as st

from repro.campaign import SEUGenerator, WindowProfile
from repro.core import parse_fault_file, parse_fault_line, \
    render_fault_file
from repro.core.fault import (
    Behavior,
    BehaviorKind,
    Fault,
    LocationKind,
    TimeMode,
)
from repro.isa import assemble, decode, disassemble_word

regs = st.sampled_from([f"r{i}" for i in range(32)])
small_imm = st.integers(min_value=0, max_value=255)
mem_disp = st.integers(min_value=-32768, max_value=32767)


class TestAssemblerProperties:
    @settings(max_examples=60)
    @given(ra=regs, rb=regs, rc=regs,
           op=st.sampled_from(["addq", "subq", "mulq", "and", "bis",
                               "xor", "cmplt", "cmpeq", "sll", "srl"]))
    def test_operate_assemble_disassemble_roundtrip(self, ra, rb, rc,
                                                    op):
        source = f"main: {op} {ra}, {rb}, {rc}\n"
        word = assemble(source).words()[0]
        text = disassemble_word(word)
        word2 = assemble(f"main: {text}\n").words()[0]
        assert word == word2

    @settings(max_examples=60)
    @given(ra=regs, lit=small_imm,
           op=st.sampled_from(["addq", "subq", "and", "xor"]))
    def test_literal_roundtrip(self, ra, lit, op):
        word = assemble(f"main: {op} {ra}, {lit}, r5\n").words()[0]
        decoded = decode(word)
        assert decoded.lit == lit

    @settings(max_examples=60)
    @given(ra=regs, rb=regs, disp=mem_disp,
           op=st.sampled_from(["ldq", "stq", "ldl", "stl"]))
    def test_memory_roundtrip(self, ra, rb, disp, op):
        word = assemble(f"main: {op} {ra}, {disp}({rb})\n").words()[0]
        text = disassemble_word(word)
        word2 = assemble(f"main: {text}\n").words()[0]
        assert word == word2


class TestFaultParserProperties:
    locations = st.sampled_from(list(LocationKind))
    behaviors = st.sampled_from(list(BehaviorKind))

    @settings(max_examples=100)
    @given(location=locations, kind=behaviors,
           time=st.integers(min_value=1, max_value=10**9),
           mode=st.sampled_from(list(TimeMode)),
           thread_id=st.integers(min_value=0, max_value=63),
           reg=st.integers(min_value=0, max_value=31),
           bits=st.lists(st.integers(min_value=0, max_value=63),
                         min_size=1, max_size=4, unique=True),
           operand=st.integers(min_value=0, max_value=(1 << 64) - 1),
           occ=st.integers(min_value=1, max_value=1000))
    def test_describe_parse_roundtrip(self, location, kind, time, mode,
                                      thread_id, reg, bits, operand,
                                      occ):
        behavior = Behavior(kind=kind, operand=operand,
                            bits=tuple(sorted(bits)), occ=occ)
        fault = Fault(location=location, time_mode=mode, time=time,
                      behavior=behavior, thread_id=thread_id,
                      reg_index=reg,
                      operand_role="dst", operand_index=1)
        parsed = parse_fault_line(fault.describe())
        assert parsed.location is fault.location
        assert parsed.time == fault.time
        assert parsed.time_mode is fault.time_mode
        assert parsed.thread_id == fault.thread_id
        assert parsed.behavior.kind is fault.behavior.kind
        assert parsed.behavior.occ == fault.behavior.occ
        if kind is BehaviorKind.FLIP:
            assert parsed.behavior.bits == fault.behavior.bits
        if kind in (BehaviorKind.IMMEDIATE, BehaviorKind.XOR):
            assert parsed.behavior.operand == fault.behavior.operand
        if location in (LocationKind.INT_REG, LocationKind.FP_REG):
            assert parsed.reg_index == fault.reg_index
        if location is LocationKind.DECODE:
            assert parsed.operand_role == "dst"
            assert parsed.operand_index == 1

    @settings(max_examples=30)
    @given(count=st.integers(min_value=0, max_value=20),
           seed=st.integers(min_value=0, max_value=10**6))
    def test_generated_fault_files_roundtrip(self, count, seed):
        profile = WindowProfile(committed=5000, ticks=5000)
        generator = SEUGenerator(profile, seed=seed)
        faults = generator.batch(count)
        parsed = parse_fault_file(render_fault_file(faults))
        assert parsed == faults


class TestGeneratorProperties:
    @settings(max_examples=30)
    @given(seed=st.integers(min_value=0, max_value=10**6),
           committed=st.integers(min_value=1, max_value=10**7))
    def test_times_always_in_window(self, seed, committed):
        profile = WindowProfile(committed=committed, ticks=committed)
        generator = SEUGenerator(profile, seed=seed)
        for fault in generator.batch(10):
            assert 1 <= fault.time <= committed

    @settings(max_examples=20)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_register_indices_valid(self, seed):
        profile = WindowProfile(committed=100, ticks=100)
        for fault in SEUGenerator(profile, seed=seed).batch(30):
            if fault.location in (LocationKind.INT_REG,
                                  LocationKind.FP_REG):
                assert 0 <= fault.reg_index < 32
