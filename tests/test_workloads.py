"""Workload tests: golden runs, quality metrics, acceptance rules."""

import math

import pytest

from repro.compiler import compile_source
from repro.core import FaultInjector
from repro.sim import SimConfig, Simulator
from repro.workloads import (
    Outputs,
    WORKLOAD_NAMES,
    build,
    decimal_digits_match,
    extract_outputs,
    is_permutation,
    parse_floats,
    psnr,
)
from repro.workloads import canneal, dct, deblocking, jacobi, knapsack


def golden_run(spec, model="atomic"):
    injector = FaultInjector()
    sim = Simulator(SimConfig(cpu_model=model), injector=injector)
    sim.load(compile_source(spec.source), spec.name)
    result = sim.run(max_instructions=30_000_000)
    process = sim.process(0)
    assert result.status == "completed"
    assert process.state.value == "exited", process.crash_reason
    assert process.exit_code == 0
    return sim, injector


class TestQualityMetrics:
    def test_psnr_identical_is_inf(self):
        assert psnr([1, 2, 3], [1, 2, 3]) == math.inf

    def test_psnr_decreases_with_noise(self):
        base = list(range(100))
        small = [v + 1 for v in base]
        large = [v + 40 for v in base]
        assert psnr(base, small) > psnr(base, large) > 0

    def test_psnr_known_value(self):
        # MSE of 1 against peak 255 -> 10*log10(255^2) = 48.13 dB.
        base = [0] * 16
        off = [1] * 16
        assert abs(psnr(base, off) - 48.1308) < 0.001

    def test_psnr_nonfinite_values_reject(self):
        assert psnr([1.0, 2.0], [1.0, math.nan]) == 0.0
        assert psnr([1.0, 2.0], [math.inf, 2.0]) == 0.0

    def test_psnr_length_mismatch(self):
        assert psnr([1, 2], [1]) == 0.0

    def test_is_permutation(self):
        assert is_permutation([2, 0, 1], 3)
        assert not is_permutation([0, 0, 1], 3)
        assert not is_permutation([0, 1, 3], 3)
        assert not is_permutation([0, 1], 3)

    def test_decimal_digits_match(self):
        assert decimal_digits_match(3.14159, 3.14999, 2)
        assert not decimal_digits_match(3.14159, 3.15001, 2)
        assert not decimal_digits_match(math.nan, 3.14, 2)

    def test_parse_floats_skips_garbage(self):
        assert parse_floats("pi 3.14 xx 2 bad1.2.3") == [3.14, 2.0]


class TestAllWorkloadsGolden:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_tiny_scale_runs_and_accepts_itself(self, name):
        spec = build(name, "tiny")
        sim, injector = golden_run(spec)
        outputs = extract_outputs(spec, sim, sim.process(0))
        assert spec.accept(outputs, outputs)
        assert len(injector.windows) == 1
        assert injector.windows[0]["committed"] > 100

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_deterministic_across_runs(self, name):
        spec = build(name, "tiny")
        consoles = set()
        for _ in range(2):
            sim, _ = golden_run(spec)
            consoles.add(sim.console_text())
        assert len(consoles) == 1

    def test_fp_usage_flags_match_reality(self):
        # deblocking / knapsack / canneal are integer-only kernels.
        for name in WORKLOAD_NAMES:
            spec = build(name, "tiny")
            assert spec.uses_fp == (name in ("dct", "jacobi", "pi"))


class TestDCT:
    def test_decode_inverts_compression_within_psnr(self):
        spec = build("dct", "tiny")
        sim, _ = golden_run(spec)
        outputs = extract_outputs(spec, sim, sim.process(0))
        decoded = dct.decode(outputs.arrays["OUT"], 8, 8)
        original = dct.input_image(8, 8)
        assert psnr(original, decoded) > dct.PSNR_THRESHOLD_DB

    def test_corrupted_coefficients_rejected(self):
        spec = build("dct", "tiny")
        sim, _ = golden_run(spec)
        golden = extract_outputs(spec, sim, sim.process(0))
        bad = Outputs(console=golden.console,
                      arrays={"OUT": tuple(v + 500 for v
                                           in golden.arrays["OUT"])})
        assert not spec.accept(golden, bad)

    def test_dc_coefficient_carries_block_mean(self):
        spec = build("dct", "tiny")
        sim, _ = golden_run(spec)
        outputs = extract_outputs(spec, sim, sim.process(0))
        # DC of the first 8x8 block ~ 8 * (mean - 128) / 16.
        image = dct.input_image(8, 8)
        mean = sum(image[:64]) / 64
        dc = outputs.arrays["OUT"][0]
        expected = 8 * (mean - 128) / dct.QUANT_TABLE[0]
        assert abs(dc - expected) <= 1.5


class TestJacobi:
    def test_converges_to_solution(self):
        spec = build("jacobi", "tiny")
        sim, _ = golden_run(spec)
        outputs = extract_outputs(spec, sim, sim.process(0))
        n = jacobi.SCALES["tiny"]["n"]
        a = jacobi.matrix(n)
        b = jacobi.rhs(n)
        x = outputs.arrays["XOUT"]
        for i in range(n):
            residual = sum(a[i * n + j] * x[j] for j in range(n)) - b[i]
            assert abs(residual) < 1e-3

    def test_accept_ignores_iteration_count(self):
        spec = build("jacobi", "tiny")
        sim, _ = golden_run(spec)
        golden = extract_outputs(spec, sim, sim.process(0))
        other = Outputs(console="iters 999\n", arrays=dict(golden.arrays))
        assert spec.accept(golden, other)

    def test_accept_rejects_different_solution(self):
        spec = build("jacobi", "tiny")
        sim, _ = golden_run(spec)
        golden = extract_outputs(spec, sim, sim.process(0))
        bad = Outputs(console=golden.console,
                      arrays={"XOUT": tuple(v + 0.001 for v
                                            in golden.arrays["XOUT"])})
        assert not spec.accept(golden, bad)


class TestPI:
    def test_estimate_near_pi(self):
        spec = build("pi", "tiny")
        sim, _ = golden_run(spec)
        value = parse_floats(sim.console_text())[0]
        assert abs(value - math.pi) < 0.25

    def test_accept_tolerates_last_digits(self):
        spec = build("pi", "tiny")
        golden = Outputs(console="pi 3.14\n")
        assert spec.accept(golden, Outputs(console="pi 3.19\n"))
        assert not spec.accept(golden, Outputs(console="pi 3.25\n"))
        assert not spec.accept(golden, Outputs(console="pi\n"))


class TestKnapsack:
    def test_best_solution_is_feasible(self):
        spec = build("knapsack", "tiny")
        sim, _ = golden_run(spec)
        outputs = extract_outputs(spec, sim, sim.process(0))
        best_value, best_mask = outputs.arrays["BEST"]
        params = knapsack.SCALES["tiny"]
        weights = knapsack.item_weights(params["items"])
        values = knapsack.item_values(params["items"])
        weight = sum(weights[i] for i in range(params["items"])
                     if (best_mask >> i) & 1)
        value = sum(values[i] for i in range(params["items"])
                    if (best_mask >> i) & 1)
        assert weight <= params["limit"]
        assert value == best_value > 0

    def test_accept_rejects_invalid_mask(self):
        spec = build("knapsack", "tiny")
        sim, _ = golden_run(spec)
        golden = extract_outputs(spec, sim, sim.process(0))
        lying = Outputs(console=golden.console,
                        arrays={"BEST": (golden.arrays["BEST"][0],
                                         (1 << 30) - 1)})
        assert not spec.accept(golden, lying)


class TestDeblocking:
    def test_filter_smooths_block_edges(self):
        spec = build("deblocking", "tiny")
        sim, _ = golden_run(spec)
        outputs = extract_outputs(spec, sim, sim.process(0))
        params = deblocking.SCALES["tiny"]
        width, height = params["width"], params["height"]
        original = deblocking.input_frame(width, height)
        filtered = outputs.arrays["OUT"]

        def edge_energy(img):
            total = 0
            for y in range(height):
                total += abs(img[y * width + 8] - img[y * width + 7])
            return total

        assert edge_energy(filtered) < edge_energy(original)

    def test_accept_uses_high_psnr_threshold(self):
        spec = build("deblocking", "tiny")
        sim, _ = golden_run(spec)
        golden = extract_outputs(spec, sim, sim.process(0))
        slight = Outputs(
            console=golden.console,
            arrays={"OUT": tuple(
                v + (1 if i == 0 else 0)
                for i, v in enumerate(golden.arrays["OUT"]))})
        # One off-by-one pixel in a tiny frame: PSNR ~ 69 dB < 80.
        assert not spec.accept(golden, slight)
        assert spec.accept(golden, golden)


class TestCanneal:
    def test_annealing_reduces_cost(self):
        spec = build("canneal", "tiny")
        sim, _ = golden_run(spec)
        outputs = extract_outputs(spec, sim, sim.process(0))
        initial, final = outputs.arrays["COST_OUT"]
        assert final <= initial
        nets = canneal.SCALES["tiny"]["nets"]
        assert is_permutation(outputs.arrays["PLACE"], nets)

    def test_accept_rejects_broken_chip(self):
        spec = build("canneal", "tiny")
        sim, _ = golden_run(spec)
        golden = extract_outputs(spec, sim, sim.process(0))
        place = list(golden.arrays["PLACE"])
        place[0] = place[1]          # duplicate location: invalid chip
        broken = Outputs(console=golden.console,
                         arrays={"PLACE": tuple(place),
                                 "COST_OUT": golden.arrays["COST_OUT"]})
        assert not spec.accept(golden, broken)

    def test_accept_rejects_cost_increase(self):
        spec = build("canneal", "tiny")
        sim, _ = golden_run(spec)
        golden = extract_outputs(spec, sim, sim.process(0))
        initial = golden.arrays["COST_OUT"][0]
        worse = Outputs(console=golden.console,
                        arrays={"PLACE": golden.arrays["PLACE"],
                                "COST_OUT": (initial, initial + 10)})
        assert not spec.accept(golden, worse)


class TestRegistry:
    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            build("quicksort")

    def test_build_all(self):
        from repro.workloads import build_all
        specs = build_all("tiny")
        assert set(specs) == set(WORKLOAD_NAMES)
