"""Main-memory and cache-hierarchy tests."""

import pytest

from repro.isa.traps import MisalignedAccess, UnmappedAccess
from repro.memory import (
    Cache,
    CacheConfig,
    MainMemory,
    MemoryHierarchy,
)


@pytest.fixture
def mem():
    memory = MainMemory()
    memory.map_region("ram", 0x1000, 0x10000)
    return memory


class TestMainMemory:
    def test_read_write_all_sizes(self, mem):
        for size, value in ((1, 0xAB), (2, 0xBEEF), (4, 0xDEADBEEF),
                            (8, 0x0123456789ABCDEF)):
            mem.write(0x2000, size, value)
            assert mem.read(0x2000, size) == value

    def test_unwritten_memory_reads_zero(self, mem):
        assert mem.read(0x8000, 8) == 0

    def test_values_truncate_to_size(self, mem):
        mem.write(0x2000, 1, 0x1FF)
        assert mem.read(0x2000, 1) == 0xFF

    def test_little_endian_layout(self, mem):
        mem.write(0x2000, 8, 0x0102030405060708)
        assert mem.read(0x2000, 1) == 0x08
        assert mem.read(0x2007, 1) == 0x01

    def test_unmapped_access_raises(self, mem):
        with pytest.raises(UnmappedAccess):
            mem.read(0x998000, 8)
        with pytest.raises(UnmappedAccess):
            mem.write(0x0, 8, 1)

    def test_misaligned_access_raises(self, mem):
        with pytest.raises(MisalignedAccess):
            mem.read(0x2001, 8)
        with pytest.raises(MisalignedAccess):
            mem.write(0x2002, 4, 0)

    def test_read_only_region_rejects_writes(self):
        memory = MainMemory()
        memory.map_region("rom", 0x1000, 0x1000, writable=False)
        assert memory.read(0x1000, 8) == 0
        with pytest.raises(UnmappedAccess):
            memory.write(0x1000, 8, 1)

    def test_region_overlap_rejected(self, mem):
        with pytest.raises(ValueError):
            mem.map_region("clash", 0x1800, 0x1000)

    def test_unmap_region(self, mem):
        mem.unmap_region("ram")
        with pytest.raises(UnmappedAccess):
            mem.read(0x2000, 8)

    def test_grow_region(self, mem):
        with pytest.raises(UnmappedAccess):
            mem.read(0x11000, 8)
        mem.grow_region("ram", 0x20000)
        assert mem.read(0x11000, 8) == 0

    def test_grow_never_shrinks(self, mem):
        with pytest.raises(ValueError):
            mem.grow_region("ram", 0x100)

    def test_bulk_bytes_roundtrip(self, mem):
        blob = bytes(range(256))
        mem.write_bytes(0x3000, blob)
        assert mem.read_bytes(0x3000, 256) == blob

    def test_peek_bytes_ignores_protection(self, mem):
        mem.write_bytes(0x3000, b"hello")
        mem.unmap_region("ram")
        assert mem.peek_bytes(0x3000, 5) == b"hello"
        assert mem.peek_bytes(0x500000, 4) == b"\x00" * 4

    def test_peek_bytes_spans_pages(self, mem):
        mem.write_bytes(0x1FFC, b"abcdefgh")
        assert mem.peek_bytes(0x1FFC, 8) == b"abcdefgh"

    def test_snapshot_restore_roundtrip(self, mem):
        mem.write(0x2000, 8, 42)
        snap = mem.snapshot()
        mem.write(0x2000, 8, 99)
        mem.restore(snap)
        assert mem.read(0x2000, 8) == 42
        assert mem.region_of(0x1000).name == "ram"


class TestCache:
    def _cache(self, **kwargs):
        defaults = dict(name="test", size_bytes=1024, assoc=2,
                        line_bytes=64, hit_latency=1)
        defaults.update(kwargs)
        return Cache(CacheConfig(**defaults), memory_latency=100)

    def test_first_access_misses_then_hits(self):
        cache = self._cache()
        assert cache.access(0x100) > 1
        assert cache.access(0x100) == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_same_line_hits(self):
        cache = self._cache()
        cache.access(0x100)
        assert cache.access(0x13F) == 1   # same 64-byte line

    def test_lru_eviction(self):
        cache = self._cache(size_bytes=256, assoc=2, line_bytes=64)
        # 2 sets; addresses mapping to set 0: multiples of 128.
        cache.access(0x000)
        cache.access(0x080)
        cache.access(0x000)               # refresh LRU
        cache.access(0x100)               # evicts 0x080
        assert cache.contains(0x000)
        assert not cache.contains(0x080)
        assert cache.stats.evictions == 1

    def test_dirty_eviction_writes_back(self):
        cache = self._cache(size_bytes=256, assoc=1, line_bytes=64)
        cache.access(0x000, write=True)
        cache.access(0x100)               # conflict -> eviction
        assert cache.stats.writebacks == 1

    def test_miss_latency_includes_next_level(self):
        l2 = self._cache(name="l2", hit_latency=10)
        l1 = Cache(CacheConfig("l1", 256, 1, 64, hit_latency=1),
                   next_level=l2)
        first = l1.access(0x40)
        assert first >= 1 + 10 + 100     # l1 + l2 + memory
        assert l1.access(0x40) == 1

    def test_flush(self):
        cache = self._cache()
        cache.access(0x100)
        cache.flush()
        assert not cache.contains(0x100)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            CacheConfig("bad", size_bytes=1000, assoc=3, line_bytes=64)

    def test_snapshot_restore(self):
        cache = self._cache()
        cache.access(0x100, write=True)
        snap = cache.snapshot()
        cache.flush()
        cache.restore(snap)
        assert cache.contains(0x100)
        assert cache.stats.misses == 1


class TestHierarchy:
    def test_fetch_read_write_paths(self):
        memory = MainMemory()
        memory.map_region("ram", 0, 1 << 20)
        hier = MemoryHierarchy(memory)
        memory.write(0x100, 4, 0xAABBCCDD)
        word, latency = hier.fetch(0x100)
        assert word == 0xAABBCCDD
        assert latency > 1
        _, latency2 = hier.fetch(0x100)
        assert latency2 == 1

        hier.write(0x2000, 8, 777)
        value, _ = hier.read(0x2000, 8)
        assert value == 777
        assert memory.read(0x2000, 8) == 777   # tag-only: data in memory

    def test_stats_shape(self):
        memory = MainMemory()
        memory.map_region("ram", 0, 1 << 20)
        hier = MemoryHierarchy(memory)
        hier.read(0x0, 8)
        stats = hier.stats()
        assert set(stats) == {"l1i", "l1d", "l2"}
        assert stats["l1d"]["misses"] == 1

    def test_snapshot_restore(self):
        memory = MainMemory()
        memory.map_region("ram", 0, 1 << 20)
        hier = MemoryHierarchy(memory)
        hier.read(0x0, 8)
        snap = hier.snapshot()
        hier.read(0x40000, 8)
        hier.restore(snap)
        assert hier.l1d.stats.accesses == 1
