"""End-to-end fault-injection tests through real simulations.

Each location kind of Section III.A.1 is exercised, plus thread toggling,
context-switch tracking, occurrence spans (transient -> permanent) and
propagation bookkeeping.
"""

from repro.core import FaultInjector
from repro.sim import SimConfig, Simulator

from conftest import run_asm

# A deterministic straight-line program with a clear FI window:
#   t0 = 5; t1 = 7; t2 = t0+t1 (=12); A[0] = t2; t3 = A[0]*2 (=24)
WINDOW_ASM = """
main:
    ldi a0, 0
    fi_activate
    ldi t0, 5
    ldi t1, 7
    addq t0, t1, t2
    la t3, out
    stq t2, 0(t3)
    ldq t4, 0(t3)
    addq t4, t4, t5
    fi_activate
    mov t5, a0
    ldi v0, 5
    callsys
    ldi v0, 0
    ldi a0, 0
    callsys
    .data
out: .space 8
"""
# Instruction indices after activation (counted from 1):
#   1-2: ldi t0 (ldah+lda)   3-4: ldi t1   5: addq -> t2
#   6-7: la t3   8: stq   9: ldq   10: addq t4,t4,t5

GOLDEN = "24"


def run_window(fault_line, model="atomic"):
    sim, result = run_asm(WINDOW_ASM, model=model,
                          faults_text=fault_line,
                          max_instructions=100_000)
    return sim, result


class TestRegisterFaults:
    def test_flip_live_register_changes_output(self):
        # Corrupt t2 (r3) right after instruction 5 computed it.
        sim, _ = run_window(
            "RegisterInjectedFault Inst:5 Flip:0 Threadid:0 "
            "system.cpu0 occ:1 int 3")
        assert sim.console_text() == "26"   # (12^1)*2
        record = sim.injector.records[0]
        assert record.propagated is True

    def test_flip_dead_register_not_propagated(self):
        # r20 is never used by this program.
        sim, _ = run_window(
            "RegisterInjectedFault Inst:5 Flip:7 Threadid:0 "
            "system.cpu0 occ:1 int 20")
        assert sim.console_text() == GOLDEN
        assert sim.injector.records[0].propagated is not True

    def test_overwritten_register_not_propagated(self):
        # t4 (r22... actually t4 = r5) is loaded at instruction 9,
        # corrupting it at 8 gets overwritten by the ldq.
        sim, _ = run_window(
            "RegisterInjectedFault Inst:8 Flip:3 Threadid:0 "
            "system.cpu0 occ:1 int 5")
        assert sim.console_text() == GOLDEN
        assert sim.injector.records[0].propagated is False

    def test_fp_register_fault_harmless_in_int_program(self):
        sim, _ = run_window(
            "RegisterInjectedFault Inst:5 Flip:62 Threadid:0 "
            "system.cpu0 occ:1 fp 4")
        assert sim.console_text() == GOLDEN

    def test_zero_register_fault_is_masked_architecturally(self):
        sim, _ = run_window(
            "RegisterInjectedFault Inst:5 All1 Threadid:0 "
            "system.cpu0 occ:1 int 31")
        assert sim.console_text() == GOLDEN

    def test_sp_corruption_usually_crashes(self):
        asm = WINDOW_ASM.replace("addq t4, t4, t5",
                                 "stq t4, 0(sp)\n    addq t4, t4, t5")
        sim, _ = run_asm(
            asm,
            faults_text="RegisterInjectedFault Inst:9 Flip:40 "
                        "Threadid:0 system.cpu0 occ:1 int 30",
            max_instructions=100_000)
        assert sim.process(0).state.value == "crashed"


class TestPCFaults:
    def test_pc_fault_crashes(self):
        sim, _ = run_window(
            "PCInjectedFault Inst:5 Flip:30 Threadid:0 system.cpu0 occ:1")
        assert sim.process(0).state.value == "crashed"
        assert sim.injector.records[0].propagated is True

    def test_small_pc_nudge_can_survive(self):
        # Flipping bit 2 jumps one instruction; skipping "ldi t1, 7"'s
        # second half leaves t1 partially set -> output changes but no
        # crash (the skipped instruction is within mapped text).
        sim, _ = run_window(
            "PCInjectedFault Inst:3 Flip:2 Threadid:0 system.cpu0 occ:1")
        assert sim.process(0).state.value in ("exited", "crashed")


class TestFetchFaults:
    def test_unused_bit_flip_strictly_masked(self):
        # Instruction 5 is register-form addq: bits 13-15 are SBZ.
        sim, _ = run_window(
            "FetchStageInjectedFault Inst:5 Flip:14 Threadid:0 "
            "system.cpu0 occ:1")
        assert sim.console_text() == GOLDEN
        assert sim.injector.records[0].propagated is False

    def test_opcode_corruption_to_illegal_crashes(self):
        # addq opcode 0x10 = 0b010000; flipping bit 31 gives 0b110000
        # (0x30=BR)... flip bit 27 gives 0b010010? pick bit 26 ->
        # 0b010001 = 0x11 INTL func 0x20 = bis (legal!).  Use bit 28:
        # 0b010100 = 0x14 ITFP with func 0x20 -> illegal.
        sim, _ = run_window(
            "FetchStageInjectedFault Inst:5 Flip:28 Threadid:0 "
            "system.cpu0 occ:1")
        assert sim.process(0).state.value == "crashed"
        assert "IllegalInstruction" in sim.process(0).crash_reason

    def test_memory_displacement_corruption_crashes(self):
        # Instruction 8 is stq t2, 0(t3): flipping a high displacement
        # bit moves the store far away from the mapped data page.
        sim, _ = run_window(
            "FetchStageInjectedFault Inst:8 Flip:14 Threadid:0 "
            "system.cpu0 occ:1")
        assert sim.process(0).state.value == "crashed"

    def test_register_field_corruption_changes_data(self):
        # Flip an Ra-field bit of the addq at instruction 5.
        sim, _ = run_window(
            "FetchStageInjectedFault Inst:5 Flip:21 Threadid:0 "
            "system.cpu0 occ:1")
        process = sim.process(0)
        assert process.state.value in ("exited", "crashed")
        if process.state.value == "exited":
            assert sim.console_text() != GOLDEN or \
                sim.injector.records[0].propagated is False


class TestDecodeFaults:
    def test_source_selection_changes_operand(self):
        # At instruction 5 (addq t0, t1, t2), redirect source 0 from
        # t0 (r1) to r0 (flip bit 0): result = r0 + t1.
        sim, _ = run_window(
            "DecodeStageInjectedFault Inst:5 Flip:0 Threadid:0 "
            "system.cpu0 occ:1 src 0")
        assert sim.process(0).state.value == "exited"
        assert sim.console_text() != GOLDEN

    def test_dest_selection_redirects_write(self):
        sim, _ = run_window(
            "DecodeStageInjectedFault Inst:5 Flip:1 Threadid:0 "
            "system.cpu0 occ:1 dst 0")
        # t2 was never written -> downstream value is stale (0).
        assert sim.console_text() != GOLDEN

    def test_branchless_instruction_without_target_noop(self):
        # fi ops have no register selections; fault reports no effect.
        sim, _ = run_window(
            "DecodeStageInjectedFault Inst:10 Flip:0 Threadid:0 "
            "system.cpu0 occ:1 dst 0")
        assert sim.process(0).state.value in ("exited", "crashed")


class TestExecuteAndMemFaults:
    def test_execute_result_corruption(self):
        sim, _ = run_window(
            "ExecutionStageInjectedFault Inst:5 Flip:1 Threadid:0 "
            "system.cpu0 occ:1")
        assert sim.console_text() == "28"    # (12^2)*2

    def test_effective_address_corruption_crashes(self):
        sim, _ = run_window(
            "ExecutionStageInjectedFault Inst:8 Flip:30 Threadid:0 "
            "system.cpu0 occ:1")
        assert sim.process(0).state.value == "crashed"
        assert "UnmappedAccess" in sim.process(0).crash_reason

    def test_store_value_corruption(self):
        # MEM-queue time counts memory *transactions*: the stq is the
        # window's first memory operation.
        sim, _ = run_window(
            "MemoryInjectedFault Inst:1 Flip:0 Threadid:0 "
            "system.cpu0 occ:1")
        assert sim.console_text() == "26"

    def test_load_value_corruption(self):
        sim, _ = run_window(
            "MemoryInjectedFault Inst:2 Flip:2 Threadid:0 "
            "system.cpu0 occ:1")
        assert sim.console_text() == "16"    # (12^4)*2


class TestOccurrenceSpans:
    def test_transient_applies_once(self):
        sim, _ = run_window(
            "ExecutionStageInjectedFault Inst:5 Flip:0 Threadid:0 "
            "system.cpu0 occ:1")
        assert len(sim.injector.records) == 1

    def test_intermittent_applies_n_times(self):
        sim, _ = run_window(
            "ExecutionStageInjectedFault Inst:5 All0 Threadid:0 "
            "system.cpu0 occ:3")
        assert len(sim.injector.records) == 3

    def test_permanent_applies_until_window_end(self):
        sim, _ = run_window(
            "ExecutionStageInjectedFault Inst:5 All0 Threadid:0 "
            "system.cpu0 occ:permanent")
        # Instructions 5..10 pass the execute stage within the window,
        # but the window closes at the second fi_activate.
        assert len(sim.injector.records) >= 4


class TestThreadTargeting:
    def test_fault_for_other_thread_never_fires(self):
        sim, _ = run_window(
            "ExecutionStageInjectedFault Inst:5 All0 Threadid:9 "
            "system.cpu0 occ:1")
        assert sim.console_text() == GOLDEN
        assert not sim.injector.records

    def test_fault_for_other_cpu_never_fires(self):
        sim, _ = run_window(
            "ExecutionStageInjectedFault Inst:5 All0 Threadid:0 "
            "system.cpu7 occ:1")
        assert not sim.injector.records

    def test_fault_outside_window_never_fires(self):
        sim, _ = run_window(
            "ExecutionStageInjectedFault Inst:500000 Flip:1 Threadid:0 "
            "system.cpu0 occ:1")
        assert sim.console_text() == GOLDEN
        assert not sim.injector.records

    def test_deactivation_records_window(self):
        sim, _ = run_window(
            "ExecutionStageInjectedFault Inst:500000 Flip:1 Threadid:0 "
            "system.cpu0 occ:1")
        assert len(sim.injector.windows) == 1
        window = sim.injector.windows[0]
        assert window["thread_id"] == 0
        assert window["committed"] == 10


class TestTickTiming:
    def test_tick_scheduled_fault_fires(self):
        sim, _ = run_window(
            "ExecutionStageInjectedFault Tick:3 All0 Threadid:0 "
            "system.cpu0 occ:permanent")
        assert sim.injector.records


class TestInjectorLifecycle:
    def test_reset_rearms_faults(self):
        injector = FaultInjector.from_text(
            "ExecutionStageInjectedFault Inst:5 Flip:0 Threadid:0 "
            "system.cpu0 occ:1")
        sim = Simulator(SimConfig(), injector=injector)
        sim.load(WINDOW_ASM, "t")
        sim.run(max_instructions=100_000)
        assert injector.records
        assert injector.all_faults_done
        injector.reset()
        assert not injector.records
        assert not injector.all_faults_done
        assert injector.queues.pending_count() == 1

    def test_all_faults_done_signals_model_switch_point(self):
        injector = FaultInjector.from_text(
            "ExecutionStageInjectedFault Inst:5 Flip:0 Threadid:0 "
            "system.cpu0 occ:1")
        assert not injector.all_faults_done
