"""Unit tests for the five per-stage fault queues."""

from repro.core import (
    Behavior,
    BehaviorKind,
    Fault,
    FaultQueues,
    LocationKind,
    PERMANENT,
    Stage,
    TimeMode,
)
from repro.core.queues import StageQueue
from repro.core.thread_state import ThreadEnabledFault


def make_fault(time=5, occ=1, mode=TimeMode.INSTRUCTIONS,
               thread_id=0, cpu="system.cpu0",
               location=LocationKind.EXECUTE):
    return Fault(location=location, time_mode=mode, time=time,
                 behavior=Behavior(BehaviorKind.FLIP, bits=(0,), occ=occ),
                 thread_id=thread_id, cpu=cpu)


def thread(thread_id=0, activation_tick=0):
    return ThreadEnabledFault(thread_id=thread_id, pcb_addr=0x1000,
                              activation_tick=activation_tick)


class TestStageQueue:
    def test_not_due_before_time(self):
        queue = StageQueue(Stage.EXECUTE)
        queue.insert(make_fault(time=5))
        assert queue.due(thread(), 4, 0, "system.cpu0") == []
        assert not queue.empty

    def test_due_exactly_at_time(self):
        queue = StageQueue(Stage.EXECUTE)
        queue.insert(make_fault(time=5))
        hits = queue.due(thread(), 5, 0, "system.cpu0")
        assert len(hits) == 1
        assert queue.empty

    def test_due_catches_up_past_time(self):
        # The >= trigger: a MEM fault scheduled between transactions
        # fires at the next one.
        queue = StageQueue(Stage.MEM)
        queue.insert(make_fault(time=5))
        hits = queue.due(thread(), 9, 0, "system.cpu0")
        assert len(hits) == 1

    def test_occurrences_span_consecutive_hits(self):
        queue = StageQueue(Stage.EXECUTE)
        queue.insert(make_fault(time=3, occ=3))
        total = 0
        for count in range(1, 10):
            total += len(queue.due(thread(), count, 0, "system.cpu0"))
        assert total == 3
        assert queue.empty

    def test_permanent_never_exhausts(self):
        queue = StageQueue(Stage.EXECUTE)
        queue.insert(make_fault(time=1, occ=PERMANENT))
        for count in range(1, 50):
            assert len(queue.due(thread(), count, 0,
                                 "system.cpu0")) == 1
        assert not queue.empty

    def test_wrong_thread_stays_pending(self):
        queue = StageQueue(Stage.EXECUTE)
        queue.insert(make_fault(time=1, thread_id=7))
        assert queue.due(thread(thread_id=0), 100, 0,
                         "system.cpu0") == []
        assert not queue.empty

    def test_wrong_cpu_stays_pending(self):
        queue = StageQueue(Stage.EXECUTE)
        queue.insert(make_fault(time=1, cpu="system.cpu3"))
        assert queue.due(thread(), 100, 0, "system.cpu0") == []

    def test_any_cpu_matches(self):
        queue = StageQueue(Stage.EXECUTE)
        queue.insert(make_fault(time=1, cpu="any"))
        assert len(queue.due(thread(), 1, 0, "system.cpu0")) == 1

    def test_tick_mode_uses_elapsed_ticks(self):
        queue = StageQueue(Stage.EXECUTE)
        queue.insert(make_fault(time=100, mode=TimeMode.TICKS))
        t = thread(activation_tick=1000)
        assert queue.due(t, 1, 1050, "system.cpu0") == []
        assert len(queue.due(t, 2, 1100, "system.cpu0")) == 1

    def test_tick_mode_occ_expires_by_tick(self):
        queue = StageQueue(Stage.EXECUTE)
        queue.insert(make_fault(time=10, occ=20, mode=TimeMode.TICKS))
        t = thread(activation_tick=0)
        assert len(queue.due(t, 1, 15, "system.cpu0")) == 1
        assert len(queue.due(t, 2, 25, "system.cpu0")) == 1
        # Past expiry (activation + time + occ = 30):
        assert queue.due(t, 3, 31, "system.cpu0") == []
        assert queue.empty

    def test_multiple_faults_same_time(self):
        queue = StageQueue(Stage.EXECUTE)
        queue.insert(make_fault(time=5))
        queue.insert(make_fault(time=5))
        assert len(queue.due(thread(), 5, 0, "system.cpu0")) == 2

    def test_pending_kept_sorted(self):
        queue = StageQueue(Stage.EXECUTE)
        queue.insert(make_fault(time=50))
        queue.insert(make_fault(time=5))
        queue.insert(make_fault(time=20))
        assert [f.time for f in queue.pending] == [5, 20, 50]


class TestFaultQueues:
    def test_routing_by_stage(self):
        queues = FaultQueues([
            make_fault(location=LocationKind.FETCH),
            make_fault(location=LocationKind.PC),
            make_fault(location=LocationKind.INT_REG),
        ])
        assert len(queues.queue(Stage.FETCH).pending) == 1
        assert len(queues.queue(Stage.REGFILE).pending) == 2
        assert queues.pending_count() == 3

    def test_all_exhausted_lifecycle(self):
        queues = FaultQueues([make_fault(time=1)])
        assert not queues.all_exhausted
        queues.queue(Stage.EXECUTE).due(thread(), 1, 0, "system.cpu0")
        assert queues.all_exhausted

    def test_reset_rearms_from_initial(self):
        queues = FaultQueues([make_fault(time=1)])
        queues.queue(Stage.EXECUTE).due(thread(), 1, 0, "system.cpu0")
        queues.reset()
        assert queues.pending_count() == 1

    def test_empty_queues_exhausted(self):
        assert FaultQueues([]).all_exhausted
