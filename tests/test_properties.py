"""Property-based tests (hypothesis) on core invariants."""

import struct

from hypothesis import given, settings, strategies as st

from repro.core import Behavior, BehaviorKind
from repro.isa import encoding as enc, instructions as ins
from repro.isa.registers import (
    MASK64,
    bits_to_float,
    float_to_bits,
    sign_extend,
    to_signed64,
)
from repro.isa.traps import IllegalInstruction
from repro.memory import MainMemory

words = st.integers(min_value=0, max_value=(1 << 32) - 1)
u64 = st.integers(min_value=0, max_value=MASK64)
regs = st.integers(min_value=0, max_value=31)
bits64 = st.integers(min_value=0, max_value=63)


class TestEncodingProperties:
    @given(opcode=st.sampled_from([ins.OP_INTA, ins.OP_INTL,
                                   ins.OP_INTS, ins.OP_INTM]),
           ra=regs, rb=regs, rc=regs)
    def test_operate_encode_decode_roundtrip(self, opcode, ra, rb, rc):
        func = {ins.OP_INTA: 0x20, ins.OP_INTL: 0x20,
                ins.OP_INTS: 0x39, ins.OP_INTM: 0x20}[opcode]
        word = enc.encode_operate(opcode, ra, rb, func, rc)
        decoded = ins.decode(word)
        assert (decoded.ra, decoded.rb, decoded.rc) == (ra, rb, rc)
        assert decoded.lit is None

    @given(ra=regs, rb=regs,
           disp=st.integers(min_value=-(1 << 15),
                            max_value=(1 << 15) - 1))
    def test_memory_encode_decode_roundtrip(self, ra, rb, disp):
        word = enc.encode_memory(ins.OP_LDQ, ra, rb, disp)
        decoded = ins.decode(word)
        assert (decoded.ra, decoded.rb, decoded.disp) == (ra, rb, disp)

    @given(ra=regs,
           disp=st.integers(min_value=-(1 << 20),
                            max_value=(1 << 20) - 1))
    def test_branch_encode_decode_roundtrip(self, ra, disp):
        word = enc.encode_branch(ins.OP_BEQ, ra, disp)
        decoded = ins.decode(word)
        assert (decoded.ra, decoded.disp) == (ra, disp)

    @given(word=words, bit=st.integers(min_value=0, max_value=31))
    def test_every_bit_of_every_word_classifies(self, word, bit):
        # field_of_fetch_bit must never raise for any 32-bit word.
        field = ins.field_of_fetch_bit(word, bit)
        assert field is not None

    @given(word=words)
    def test_decode_total_function(self, word):
        # decode either returns a Decoded or raises IllegalInstruction —
        # never anything else (fetch faults feed arbitrary words here).
        try:
            decoded = ins.decode(word)
        except IllegalInstruction:
            return
        assert 0 <= decoded.ra < 32
        assert 0 <= decoded.rb < 32
        assert 0 <= decoded.rc < 32

    @given(word=words)
    def test_decode_deterministic(self, word):
        try:
            first = ins.decode(word)
            second = ins.decode(word)
        except IllegalInstruction:
            return
        assert first.name == second.name
        assert first.kind == second.kind


class TestNumericProperties:
    @given(value=u64)
    def test_signed_unsigned_roundtrip(self, value):
        assert to_signed64(value) & MASK64 == value

    @given(value=u64, width=st.integers(min_value=1, max_value=64))
    def test_sign_extend_idempotent(self, value, width):
        once = sign_extend(value, width)
        assert sign_extend(once, width) == once

    @given(value=st.floats(allow_nan=False))
    def test_float_bits_roundtrip(self, value):
        assert bits_to_float(float_to_bits(value)) == value

    @given(bits=u64)
    def test_bits_float_bits_roundtrip(self, bits):
        # NaN payloads survive: struct pack/unpack is bit-transparent
        # except for NaN canonicalisation on some platforms; compare
        # via the packed representation.
        rebuilt = float_to_bits(bits_to_float(bits))
        original = struct.unpack("<d", struct.pack("<Q", bits))[0]
        assert bits_to_float(rebuilt) == original or (
            original != original)  # NaN case

    @given(a=u64, b=u64)
    def test_addq_subq_inverse(self, a, b):
        add = ins.INTA_FUNCS[0x20][1]
        sub = ins.INTA_FUNCS[0x29][1]
        assert sub(add(a, b), b) == a


class TestBehaviorProperties:
    @given(value=u64, bit=bits64)
    def test_flip_involution(self, value, bit):
        behavior = Behavior(BehaviorKind.FLIP, bits=(bit,))
        assert behavior.apply(behavior.apply(value)) == value

    @given(value=u64, mask=u64)
    def test_xor_involution(self, value, mask):
        behavior = Behavior(BehaviorKind.XOR, operand=mask)
        assert behavior.apply(behavior.apply(value)) == value

    @given(value=u64, operand=u64,
           width=st.sampled_from([5, 8, 32, 64]))
    def test_apply_respects_width(self, value, operand, width):
        for kind in BehaviorKind:
            behavior = Behavior(kind, operand=operand, bits=(3,))
            out = behavior.apply(value & ((1 << width) - 1), width=width)
            assert 0 <= out < (1 << width)


class TestMemoryProperties:
    @settings(max_examples=50)
    @given(offset=st.integers(min_value=0, max_value=0xFFF8),
           value=u64)
    def test_write_read_roundtrip(self, offset, value):
        memory = MainMemory()
        memory.map_region("ram", 0x10000, 0x10000)
        address = 0x10000 + (offset & ~7)
        memory.write(address, 8, value)
        assert memory.read(address, 8) == value

    @settings(max_examples=50)
    @given(blob=st.binary(min_size=1, max_size=64),
           offset=st.integers(min_value=0, max_value=0x1000))
    def test_bytes_roundtrip_across_pages(self, blob, offset):
        memory = MainMemory()
        memory.map_region("ram", 0x10000, 0x10000)
        memory.write_bytes(0x10000 + offset, blob)
        assert memory.read_bytes(0x10000 + offset, len(blob)) == blob
        assert memory.peek_bytes(0x10000 + offset, len(blob)) == blob


class TestCompilerProperties:
    """Compiled integer arithmetic must agree with Python (mod 2^64
    wrap-around and C-style division aside)."""

    @settings(max_examples=12, deadline=None)
    @given(a=st.integers(min_value=-10**6, max_value=10**6),
           b=st.integers(min_value=-10**6, max_value=10**6),
           c=st.integers(min_value=1, max_value=10**4))
    def test_expression_evaluation_matches_python(self, a, b, c):
        from conftest import run_minic
        source = f"""
def main():
    a = {a}
    b = {b}
    c = {c}
    print_int(a + b * 2 - a // c)
    print_char(32)
    print_int((a ^ b) & 1023)
    exit(0)
"""
        sim, _ = run_minic(source, with_injector=False)
        floordiv = abs(a) // c if a >= 0 else -(abs(a) // c)
        expected = f"{a + b * 2 - floordiv} {(a ^ b) & 1023}"
        assert sim.console_text() == expected

    @settings(max_examples=10, deadline=None)
    @given(values=st.lists(st.integers(min_value=-1000, max_value=1000),
                           min_size=1, max_size=8))
    def test_array_sum_matches_python(self, values):
        from conftest import run_minic
        items = ", ".join(str(v) for v in values)
        source = f"""
A = iarray_init([{items}])

def main():
    total = 0
    for i in range({len(values)}):
        total += A[i]
    print_int(total)
    exit(0)
"""
        sim, _ = run_minic(source, with_injector=False)
        assert sim.console_text() == str(sum(values))
