"""Result-aggregation unit tests (Distribution, grouping, rendering)."""

import pytest

from repro.campaign.classify import OUTCOME_ORDER, Outcome
from repro.campaign.results import (
    Distribution,
    by_fetch_field,
    by_location,
    by_time_bins,
    render_table,
    summary,
)
from repro.campaign.runner import ExperimentResult
from repro.core import Behavior, BehaviorKind, Fault, LocationKind, \
    TimeMode
from repro.isa import encoding as enc, instructions as ins


def make_result(location=LocationKind.EXECUTE,
                outcome=Outcome.STRICTLY_CORRECT, time_fraction=0.5,
                bits=(0,), injected=True, injection_before=None):
    fault = Fault(location=location, time_mode=TimeMode.INSTRUCTIONS,
                  time=10, behavior=Behavior(BehaviorKind.FLIP,
                                             bits=bits))
    return ExperimentResult(
        fault=fault, outcome=outcome, injected=injected,
        propagated=True, crash_reason=None, instructions=100, ticks=100,
        wall_seconds=0.01, console="", time_fraction=time_fraction,
        injection_pc=0x1000 if injected else None,
        injection_before=injection_before)


class TestDistribution:
    def test_empty_distribution(self):
        dist = Distribution()
        assert dist.total == 0
        assert dist.fraction(Outcome.CRASHED) == 0.0
        assert dist.acceptable_fraction == 0.0

    def test_fractions_sum_to_one(self):
        dist = Distribution()
        for outcome in OUTCOME_ORDER:
            dist.add(outcome)
        assert dist.total == 5
        assert abs(sum(dist.fraction(o) for o in OUTCOME_ORDER)
                   - 1.0) < 1e-12

    def test_acceptable_is_strict_plus_correct(self):
        dist = Distribution()
        dist.add(Outcome.STRICTLY_CORRECT)
        dist.add(Outcome.CORRECT)
        dist.add(Outcome.CRASHED)
        dist.add(Outcome.NON_PROPAGATED)
        assert dist.acceptable_fraction == pytest.approx(0.5)

    def test_as_dict_keys(self):
        dist = Distribution()
        dist.add(Outcome.SDC)
        assert set(dist.as_dict()) == {o.value for o in OUTCOME_ORDER}

    def test_outcome_acceptable_property(self):
        assert Outcome.STRICTLY_CORRECT.acceptable
        assert Outcome.CORRECT.acceptable
        assert not Outcome.CRASHED.acceptable
        assert not Outcome.NON_PROPAGATED.acceptable
        assert not Outcome.SDC.acceptable


class TestGrouping:
    def test_by_location_partition(self):
        results = [make_result(location=LocationKind.PC),
                   make_result(location=LocationKind.PC),
                   make_result(location=LocationKind.MEM)]
        groups = by_location(results)
        assert groups[LocationKind.PC].total == 2
        assert groups[LocationKind.MEM].total == 1

    def test_summary_counts_everything(self):
        results = [make_result(outcome=o) for o in OUTCOME_ORDER]
        assert summary(results).total == len(OUTCOME_ORDER)

    def test_time_bins_boundaries(self):
        results = [make_result(time_fraction=f)
                   for f in (0.0, 0.09, 0.5, 0.99, 1.0)]
        bins = by_time_bins(results, bins=10)
        assert bins[0].total == 2        # 0.0 and 0.09
        assert bins[5].total == 1
        assert bins[9].total == 2        # 0.99 and the clamped 1.0

    def test_fetch_field_grouping_with_known_word(self):
        word = enc.encode_operate(ins.OP_INTA, 1, 2, 0x20, 3)
        results = [
            make_result(location=LocationKind.FETCH, bits=(14,),
                        injection_before=word),   # SBZ bit
            make_result(location=LocationKind.FETCH, bits=(28,),
                        injection_before=word),   # opcode bit
            make_result(location=LocationKind.FETCH, bits=(0,),
                        injected=False),          # never fired
            make_result(location=LocationKind.MEM),  # filtered out
        ]
        groups = by_fetch_field(results)
        assert groups["unused"].total == 1
        assert groups["opcode"].total == 1
        assert groups["not_injected"].total == 1
        assert sum(d.total for d in groups.values()) == 3


class TestRendering:
    def test_render_table_alignment_and_rows(self):
        dist = Distribution()
        dist.add(Outcome.CRASHED)
        text = render_table({"rowname": dist}, title="Title")
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "rowname" in lines[2]
        assert "100.0%" in lines[2]

    def test_render_empty_rows(self):
        text = render_table({})
        assert "group" in text

    def test_experiment_result_as_dict_round(self):
        result = make_result()
        data = result.as_dict()
        assert data["outcome"] == "strictly_correct"
        assert "ExecutionStageInjectedFault" in data["fault"]
