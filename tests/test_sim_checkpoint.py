"""Simulator run-loop, stats, and checkpoint/restore tests."""

import pytest

from repro.compiler import compile_source
from repro.core import FaultInjector, parse_fault_file
from repro.sim import (
    CheckpointError,
    SimConfig,
    Simulator,
    dumps_checkpoint,
    restore_checkpoint,
    save_checkpoint,
)
from repro.sim import stats as sim_stats

from conftest import run_asm, run_minic

CHECKPOINTED = """
A = iarray(4)

def main():
    A[0] = 1111
    fi_read_init_all()
    fi_activate_inst(0)
    total = 0
    for i in range(50):
        total += i
    fi_activate_inst(0)
    print_int(total)
    print_int(A[0])
    exit(0)
"""


class TestRunLoop:
    def test_completed_status(self):
        sim, result = run_minic("def main():\n    exit(0)\n")
        assert result.status == "completed"

    def test_limit_status(self):
        sim, result = run_minic(
            "def main():\n    while 1:\n        pass\n    exit(0)\n",
            max_instructions=2000)
        assert result.status == "limit"

    def test_halt_status(self):
        sim, result = run_asm("main: halt\n")
        assert result.status == "halted"

    def test_instructions_and_ticks_accumulate(self):
        sim, result = run_minic("def main():\n    exit(0)\n")
        assert result.instructions > 0
        assert result.ticks >= result.instructions

    def test_stats_dump_is_sorted_text(self):
        sim, _ = run_minic("def main():\n    exit(0)\n")
        dump = sim.stats_dump()
        lines = dump.strip().splitlines()
        assert lines == sorted(lines)
        assert any(line.startswith("sim.instructions") for line in lines)

    def test_stats_collect_includes_caches(self):
        sim, _ = run_minic("def main():\n    exit(0)\n", model="timing")
        collected = sim_stats.collect(sim)
        assert collected["system.cpu0.l1d.misses"] >= 0
        assert collected["system.cpu0.committed"] > 0


class TestCheckpointing:
    def _checkpointed_sim(self):
        injector = FaultInjector()
        sim = Simulator(SimConfig(), injector=injector)
        sim.load(compile_source(CHECKPOINTED), "app")
        holder = {}
        sim.on_checkpoint = lambda s: holder.__setitem__(
            "blob", dumps_checkpoint(s))
        result = sim.run(until_checkpoint=True, max_instructions=500_000)
        assert "blob" in holder
        return sim, holder["blob"]

    def test_checkpoint_taken_at_fi_read_init(self):
        sim, blob = self._checkpointed_sim()
        assert sim.checkpoint_taken
        # Continue the original: output is complete.
        result = sim.run(max_instructions=500_000)
        assert result.status == "completed"
        assert sim.console_text() == "12251111"

    def test_restore_resumes_exactly(self):
        sim, blob = self._checkpointed_sim()
        sim.run(max_instructions=500_000)
        restored = restore_checkpoint(blob)
        result = restored.run(max_instructions=500_000)
        assert result.status == "completed"
        assert restored.console_text() == sim.console_text()
        assert restored.process(0).exit_code == 0

    def test_restore_preserves_pre_checkpoint_memory(self):
        _, blob = self._checkpointed_sim()
        restored = restore_checkpoint(blob)
        restored.run(max_instructions=500_000)
        assert restored.console_text().endswith("1111")

    def test_restore_with_fault_config_injects(self):
        _, blob = self._checkpointed_sim()
        faults = parse_fault_file(
            "ExecutionStageInjectedFault Inst:10 All1 Threadid:0 "
            "system.cpu0 occ:1\n")
        restored = restore_checkpoint(blob, faults=faults)
        restored.run(max_instructions=500_000)
        assert restored.injector.records
        # The same checkpoint restores cleanly a second time with a
        # different fault list (fi_read_init_all semantics).
        other = restore_checkpoint(blob, faults=[])
        other.run(max_instructions=500_000)
        assert not other.injector.records
        assert other.console_text() == "12251111"

    def test_restore_into_different_cpu_model(self):
        _, blob = self._checkpointed_sim()
        restored = restore_checkpoint(
            blob, config_override=SimConfig(cpu_model="o3"))
        assert restored.cpu.model_name == "o3"
        restored.run(max_instructions=500_000)
        assert restored.console_text() == "12251111"

    def test_save_and_load_via_file(self, tmp_path):
        sim, _ = self._checkpointed_sim()
        path = tmp_path / "ckpt.bin"
        save_checkpoint(sim, path)
        restored = restore_checkpoint(path)
        restored.run(max_instructions=500_000)
        assert restored.console_text() == "12251111"

    def test_version_mismatch_rejected(self, tmp_path):
        import pickle
        path = tmp_path / "bad.bin"
        with open(path, "wb") as handle:
            pickle.dump({"version": -1}, handle)
        with pytest.raises(CheckpointError):
            restore_checkpoint(path)

    def test_checkpoint_restore_determinism(self):
        """Two restores of the same checkpoint produce identical stats
        dumps — the foundation of campaign reproducibility."""
        _, blob = self._checkpointed_sim()
        dumps = []
        for _ in range(2):
            restored = restore_checkpoint(blob)
            restored.run(max_instructions=500_000)
            dumps.append(restored.stats_dump())
        assert dumps[0] == dumps[1]


class TestModelSwitchAfterFI:
    def test_switch_to_atomic_after_fault_commits(self):
        faults = parse_fault_file(
            "ExecutionStageInjectedFault Inst:10 Flip:0 Threadid:0 "
            "system.cpu0 occ:1\n")
        injector = FaultInjector(faults)
        config = SimConfig(cpu_model="o3", switch_to_atomic_after_fi=True)
        sim = Simulator(config, injector=injector)
        sim.load(compile_source(CHECKPOINTED), "app")
        result = sim.run(max_instructions=500_000)
        assert result.status == "completed"
        assert injector.records
        assert sim.cpu.model_name == "atomic"

    def test_no_switch_while_faults_pending(self):
        faults = parse_fault_file(
            "ExecutionStageInjectedFault Inst:999999999 Flip:0 "
            "Threadid:0 system.cpu0 occ:1\n")
        injector = FaultInjector(faults)
        config = SimConfig(cpu_model="o3", switch_to_atomic_after_fi=True)
        sim = Simulator(config, injector=injector)
        sim.load(compile_source(CHECKPOINTED), "app")
        sim.run(max_instructions=500_000)
        assert sim.cpu.model_name == "o3"
