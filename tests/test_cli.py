"""Command-line interface tests."""

import json

import pytest

from repro.cli import main

MINIC = """
def main():
    fi_read_init_all()
    fi_activate_inst(0)
    s = 0
    for i in range(30):
        s += i
    fi_activate_inst(0)
    print_int(s)
    exit(0)
"""

ASM = """
main:
    ldi a0, 7
    ldi v0, 5
    callsys
    ldi v0, 0
    ldi a0, 0
    callsys
"""


@pytest.fixture
def minic_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text(MINIC)
    return str(path)


class TestRunCommand:
    def test_plain_run(self, minic_file, capsys):
        assert main(["run", minic_file]) == 0
        out = capsys.readouterr().out
        assert "status      : completed" in out
        assert "435" in out

    def test_assembly_input(self, tmp_path, capsys):
        path = tmp_path / "prog.s"
        path.write_text(ASM)
        assert main(["run", str(path)]) == 0
        assert "7" in capsys.readouterr().out

    def test_inline_fault(self, minic_file, capsys):
        code = main(["run", minic_file, "--fault",
                     "ExecutionStageInjectedFault Inst:10 All1 "
                     "Threadid:0 system.cpu0 occ:1"])
        out = capsys.readouterr().out
        assert "--- injections ---" in out
        assert code in (0, 1)

    def test_fault_file_and_stats(self, minic_file, tmp_path, capsys):
        faults = tmp_path / "faults.txt"
        faults.write_text(
            "PCInjectedFault Inst:10 Flip:30 Threadid:0 "
            "system.cpu0 occ:1\n")
        stats = tmp_path / "stats.txt"
        code = main(["run", minic_file, "--fault-file", str(faults),
                     "--stats", str(stats)])
        assert code == 1  # PC fault crashes
        assert "crashed" in capsys.readouterr().out
        assert "sim.instructions" in stats.read_text()

    def test_cpu_model_selection(self, minic_file, capsys):
        assert main(["run", minic_file, "--cpu", "o3",
                     "--switch-to-atomic"]) == 0
        assert "435" in capsys.readouterr().out


class TestOtherCommands:
    def test_workloads_listing(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("dct", "jacobi", "pi", "knapsack", "deblocking",
                     "canneal"):
            assert name in out

    def test_sample_size(self, capsys):
        assert main(["sample-size", "--confidence", "0.99",
                     "--margin", "0.0258"]) == 0
        assert "n=2492" in capsys.readouterr().out

    def test_sample_size_finite_population(self, capsys):
        assert main(["sample-size", "--population", "1000"]) == 0
        assert "n=" in capsys.readouterr().out

    def test_campaign_smoke(self, capsys):
        assert main(["campaign", "--workload", "pi", "--scale", "tiny",
                     "-n", "4", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "4 experiments" in out
        assert "ALL" in out

    def test_campaign_pinned_location(self, capsys):
        assert main(["campaign", "--workload", "pi", "--scale", "tiny",
                     "-n", "3", "--location", "pc"]) == 0
        assert "pc" in capsys.readouterr().out

    def test_campaign_pruned(self, capsys):
        assert main(["campaign", "--workload", "dct", "--scale", "tiny",
                     "-n", "10", "--seed", "7", "--prune"]) == 0
        out = capsys.readouterr().out
        assert "pruned: 10 sites ->" in out
        assert "ALL" in out

    def test_analyze_report(self, capsys):
        assert main(["analyze", "--workload", "dct", "--scale", "tiny",
                     "-n", "60", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "provably masked" in out
        assert "experiments saved" in out
        assert "effective n (Kish)" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestCoverageCommand:
    """``gemfi coverage``: fault-space coverage over a campaign share."""

    @pytest.fixture(scope="class")
    def share(self, tmp_path_factory):
        share = str(tmp_path_factory.mktemp("coverage-cli") / "share")
        assert main(["campaign", "--workload", "dct", "--scale",
                     "tiny", "-n", "6", "--seed", "7", "--prune",
                     "--share-dir", share]) == 0
        return share

    def test_table_output(self, share, capsys):
        assert main(["coverage", share]) == 0
        out = capsys.readouterr().out
        assert "fault sites visited" in out
        assert "margin" in out
        assert "# fault location" in out

    def test_json_is_byte_deterministic(self, share, capsys):
        assert main(["coverage", share, "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["coverage", share, "--json"]) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["accounted"]["experiments"] == 6
        assert payload["space"]["covered_sites"] <= \
            payload["space"]["total"]

    def test_markdown_output(self, share, capsys):
        assert main(["coverage", share, "--format", "md"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Fault-space coverage: share")
        assert "Wilson intervals" in out

    def test_single_dimension_and_unknown_rejected(self, share,
                                                   capsys):
        assert main(["coverage", share, "--dimension", "bit"]) == 0
        assert "# bit position" in capsys.readouterr().out
        assert main(["coverage", share,
                     "--dimension", "nope"]) == 2
        assert "unknown dimension" in capsys.readouterr().err

    def test_output_file(self, share, tmp_path, capsys):
        target = str(tmp_path / "coverage.md")
        assert main(["coverage", share, "--format", "md",
                     "--output", target]) == 0
        assert "-> " in capsys.readouterr().err
        with open(target, "r", encoding="utf-8") as handle:
            assert "Fault-space coverage" in handle.read()


class TestCompareCommand:
    """``gemfi compare``: differential campaign analytics with an
    outcome-regression gate."""

    @pytest.fixture(scope="class")
    def shares(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("compare-cli")
        base = str(root / "base")
        head = str(root / "head")
        for share in (base, head):
            assert main(["campaign", "--workload", "dct", "--scale",
                         "tiny", "-n", "8", "--seed", "7", "--prune",
                         "--share-dir", share]) == 0
        return base, head

    def test_self_compare_unchanged_gate_passes(self, shares, capsys):
        base, head = shares
        assert main(["compare", base, head, "--gate"]) == 0
        out = capsys.readouterr().out
        assert "verdict: unchanged" in out
        assert "Outcome deltas" in out

    def test_json_byte_deterministic(self, shares, capsys):
        base, head = shares
        assert main(["compare", base, head, "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["compare", base, head, "--json"]) == 0
        assert capsys.readouterr().out == first
        payload = json.loads(first)
        assert payload["verdict"] == "unchanged"
        assert all(row["verdict"] == "unchanged"
                   for row in payload["outcomes"].values())

    def test_gate_trips_on_mutated_outcomes(self, shares, tmp_path,
                                            capsys):
        import os
        import shutil
        base, _ = shares
        mutated = str(tmp_path / "mutated")
        shutil.copytree(base, mutated)
        results_dir = os.path.join(mutated, "results")
        for name in os.listdir(results_dir):
            path = os.path.join(results_dir, name)
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            entry["outcome"] = "sdc"
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(entry, handle)
        assert main(["compare", base, mutated, "--gate"]) == 1
        captured = capsys.readouterr()
        assert "verdict: regressed" in captured.out
        assert "gate" in captured.err

    def test_markdown_output_file(self, shares, tmp_path, capsys):
        base, head = shares
        target = str(tmp_path / "diff.md")
        assert main(["compare", base, head, "--md",
                     "--output", target]) == 0
        assert "verdict" in capsys.readouterr().err
        with open(target, "r", encoding="utf-8") as handle:
            assert handle.read().startswith("# Campaign diff")

    def test_summary_json_operand(self, shares, tmp_path, capsys):
        from repro.analysis.diff import CampaignSummary
        base, head = shares
        dump = str(tmp_path / "base-summary.json")
        payload = CampaignSummary.from_share(base).payload
        with open(dump, "w", encoding="utf-8") as handle:
            json.dump({"summary": payload}, handle)
        assert main(["compare", dump, head]) == 0
        assert "verdict:" in capsys.readouterr().out

    def test_unresolvable_operand(self, shares, capsys):
        _, head = shares
        assert main(["compare", "no-such-ref", head]) == 2
        assert "neither a share directory" in capsys.readouterr().err

    def test_report_baseline_section(self, shares, capsys):
        base, head = shares
        assert main(["report", head, "--baseline", base]) == 0
        out = capsys.readouterr().out
        assert "## Vs baseline" in out
        assert "Outcome deltas" in out

    def test_report_baseline_unresolvable(self, shares, capsys):
        _, head = shares
        assert main(["report", head, "--baseline", "nope"]) == 2
        assert "error:" in capsys.readouterr().err


class TestStoreVerifyCommand:
    """``gemfi store verify``: content-store integrity sweep."""

    def test_clean_store(self, tmp_path, capsys):
        from repro.service.store import ContentStore
        store = ContentStore(str(tmp_path / "store"))
        store.put_bytes(b"object one")
        store.put_bytes(b"object two")
        assert main(["store", "verify",
                     "--data-dir", str(tmp_path / "store")]) == 0
        assert "2 objects checked: 0 corrupt, 0 orphaned" in \
            capsys.readouterr().out

    def test_data_dir_resolution(self, tmp_path, capsys):
        from repro.service.store import ContentStore
        # A service data dir holds the store under store/.
        ContentStore(str(tmp_path / "store")).put_bytes(b"payload")
        assert main(["store", "verify",
                     "--data-dir", str(tmp_path)]) == 0
        assert "1 objects checked" in capsys.readouterr().out

    def test_corruption_and_orphans_exit_nonzero(self, tmp_path,
                                                 capsys):
        import os
        from repro.service.store import ContentStore
        store = ContentStore(str(tmp_path / "store"))
        digest = store.put_bytes(b"soon corrupt")
        path = os.path.join(str(tmp_path / "store"), "objects",
                            digest[:2], digest[2:])
        with open(path, "ab") as handle:
            handle.write(b"XX")
        orphan_dir = os.path.join(str(tmp_path / "store"), "objects",
                                  "ab")
        os.makedirs(orphan_dir, exist_ok=True)
        with open(os.path.join(orphan_dir, "stray.tmp"), "wb"):
            pass
        assert main(["store", "verify",
                     "--data-dir", str(tmp_path / "store"),
                     "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert digest in payload["corrupt"]
        assert any("stray.tmp" in entry
                   for entry in payload["orphaned"])

    def test_missing_store_usage_error(self, tmp_path, capsys):
        assert main(["store", "verify",
                     "--data-dir", str(tmp_path / "nope")]) == 2
        assert "no content store" in capsys.readouterr().err
