"""Command-line interface tests."""

import json

import pytest

from repro.cli import main

MINIC = """
def main():
    fi_read_init_all()
    fi_activate_inst(0)
    s = 0
    for i in range(30):
        s += i
    fi_activate_inst(0)
    print_int(s)
    exit(0)
"""

ASM = """
main:
    ldi a0, 7
    ldi v0, 5
    callsys
    ldi v0, 0
    ldi a0, 0
    callsys
"""


@pytest.fixture
def minic_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text(MINIC)
    return str(path)


class TestRunCommand:
    def test_plain_run(self, minic_file, capsys):
        assert main(["run", minic_file]) == 0
        out = capsys.readouterr().out
        assert "status      : completed" in out
        assert "435" in out

    def test_assembly_input(self, tmp_path, capsys):
        path = tmp_path / "prog.s"
        path.write_text(ASM)
        assert main(["run", str(path)]) == 0
        assert "7" in capsys.readouterr().out

    def test_inline_fault(self, minic_file, capsys):
        code = main(["run", minic_file, "--fault",
                     "ExecutionStageInjectedFault Inst:10 All1 "
                     "Threadid:0 system.cpu0 occ:1"])
        out = capsys.readouterr().out
        assert "--- injections ---" in out
        assert code in (0, 1)

    def test_fault_file_and_stats(self, minic_file, tmp_path, capsys):
        faults = tmp_path / "faults.txt"
        faults.write_text(
            "PCInjectedFault Inst:10 Flip:30 Threadid:0 "
            "system.cpu0 occ:1\n")
        stats = tmp_path / "stats.txt"
        code = main(["run", minic_file, "--fault-file", str(faults),
                     "--stats", str(stats)])
        assert code == 1  # PC fault crashes
        assert "crashed" in capsys.readouterr().out
        assert "sim.instructions" in stats.read_text()

    def test_cpu_model_selection(self, minic_file, capsys):
        assert main(["run", minic_file, "--cpu", "o3",
                     "--switch-to-atomic"]) == 0
        assert "435" in capsys.readouterr().out


class TestOtherCommands:
    def test_workloads_listing(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("dct", "jacobi", "pi", "knapsack", "deblocking",
                     "canneal"):
            assert name in out

    def test_sample_size(self, capsys):
        assert main(["sample-size", "--confidence", "0.99",
                     "--margin", "0.0258"]) == 0
        assert "n=2492" in capsys.readouterr().out

    def test_sample_size_finite_population(self, capsys):
        assert main(["sample-size", "--population", "1000"]) == 0
        assert "n=" in capsys.readouterr().out

    def test_campaign_smoke(self, capsys):
        assert main(["campaign", "--workload", "pi", "--scale", "tiny",
                     "-n", "4", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "4 experiments" in out
        assert "ALL" in out

    def test_campaign_pinned_location(self, capsys):
        assert main(["campaign", "--workload", "pi", "--scale", "tiny",
                     "-n", "3", "--location", "pc"]) == 0
        assert "pc" in capsys.readouterr().out

    def test_campaign_pruned(self, capsys):
        assert main(["campaign", "--workload", "dct", "--scale", "tiny",
                     "-n", "10", "--seed", "7", "--prune"]) == 0
        out = capsys.readouterr().out
        assert "pruned: 10 sites ->" in out
        assert "ALL" in out

    def test_analyze_report(self, capsys):
        assert main(["analyze", "--workload", "dct", "--scale", "tiny",
                     "-n", "60", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "provably masked" in out
        assert "experiments saved" in out
        assert "effective n (Kish)" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestCoverageCommand:
    """``gemfi coverage``: fault-space coverage over a campaign share."""

    @pytest.fixture(scope="class")
    def share(self, tmp_path_factory):
        share = str(tmp_path_factory.mktemp("coverage-cli") / "share")
        assert main(["campaign", "--workload", "dct", "--scale",
                     "tiny", "-n", "6", "--seed", "7", "--prune",
                     "--share-dir", share]) == 0
        return share

    def test_table_output(self, share, capsys):
        assert main(["coverage", share]) == 0
        out = capsys.readouterr().out
        assert "fault sites visited" in out
        assert "margin" in out
        assert "# fault location" in out

    def test_json_is_byte_deterministic(self, share, capsys):
        assert main(["coverage", share, "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["coverage", share, "--json"]) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["accounted"]["experiments"] == 6
        assert payload["space"]["covered_sites"] <= \
            payload["space"]["total"]

    def test_markdown_output(self, share, capsys):
        assert main(["coverage", share, "--format", "md"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Fault-space coverage: share")
        assert "Wilson intervals" in out

    def test_single_dimension_and_unknown_rejected(self, share,
                                                   capsys):
        assert main(["coverage", share, "--dimension", "bit"]) == 0
        assert "# bit position" in capsys.readouterr().out
        assert main(["coverage", share,
                     "--dimension", "nope"]) == 2
        assert "unknown dimension" in capsys.readouterr().err

    def test_output_file(self, share, tmp_path, capsys):
        target = str(tmp_path / "coverage.md")
        assert main(["coverage", share, "--format", "md",
                     "--output", target]) == 0
        assert "-> " in capsys.readouterr().err
        with open(target, "r", encoding="utf-8") as handle:
            assert "Fault-space coverage" in handle.read()
