"""OS-lite kernel tests: processes, syscalls, scheduling, PCB tracking."""

from repro.core import FaultInjector
from repro.sim import SimConfig, Simulator
from repro.system.process import pcb_address

from conftest import run_asm, run_minic

COUNTER = """
def main():
    for i in range(40):
        print_int(getpid())
    print_char(10)
    exit(0)
"""


class TestSyscalls:
    def test_print_int_signed(self):
        sim, _ = run_minic("""
def main():
    print_int(-42)
    exit(0)
""")
        assert sim.console_text() == "-42"

    def test_print_float_formats(self):
        sim, _ = run_minic("""
def main():
    print_float(1.0 / 3.0)
    exit(0)
""")
        assert sim.console_text() == format(1.0 / 3.0, ".12g")

    def test_print_float_handles_inf_nan(self):
        sim, _ = run_minic("""
def main():
    print_float(1.0 / 0.0)
    print_char(32)
    print_float(0.0 / 0.0)
    exit(0)
""")
        assert sim.console_text() == "inf nan"

    def test_exit_code_recorded(self):
        sim, _ = run_minic("def main():\n    exit(7)\n")
        assert sim.process(0).exit_code == 7
        assert sim.process(0).state.value == "exited"

    def test_getpid(self):
        sim, _ = run_minic("def main():\n    print_int(getpid())\n"
                           "    exit(0)\n")
        assert sim.console_text() == "0"

    def test_write_via_print_str(self):
        sim, _ = run_minic('def main():\n    print_str("ab cd")\n'
                           "    exit(0)\n")
        assert sim.console_text() == "ab cd"

    def test_brk_grows_heap(self):
        asm = """
        main:
            ldi a0, 0
            ldi v0, 2          # brk(0) -> current break
            callsys
            mov v0, t0
            lda a0, 4096(t0)   # grow by a page
            ldi v0, 2
            callsys
            stq t0, 0(t0)      # newly valid
            ldi v0, 0
            ldi a0, 0
            callsys
        """
        sim, _ = run_asm(asm)
        assert sim.process(0).state.value == "exited"

    def test_bad_syscall_number_crashes(self):
        asm = """
        main:
            ldi v0, 99
            callsys
            halt
        """
        sim, _ = run_asm(asm)
        assert sim.process(0).state.value == "crashed"
        assert "bad syscall" in sim.process(0).crash_reason

    def test_ticks_syscall_monotone(self):
        asm = """
        main:
            ldi v0, 8
            callsys
            mov v0, t0
            ldi v0, 8
            callsys
            cmplt t0, v0, t1
            mov t1, a0
            ldi v0, 5
            callsys
            ldi v0, 0
            callsys
        """
        sim, _ = run_asm(asm)
        assert sim.console_text() == "1"


class TestMultiProcess:
    def test_two_processes_both_complete(self):
        sim = Simulator(SimConfig(quantum=500))
        from repro.compiler import compile_source
        asm = compile_source(COUNTER)
        sim.load(asm, "a")
        sim.load(asm, "b")
        result = sim.run(max_instructions=4_000_000)
        assert result.status == "completed"
        assert sim.process(0).console_text().strip("\n") == "0" * 40
        assert sim.process(1).console_text().strip("\n") == "1" * 40

    def test_preemption_actually_happens(self):
        sim = Simulator(SimConfig(quantum=200))
        from repro.compiler import compile_source
        asm = compile_source(COUNTER)
        sim.load(asm, "a")
        sim.load(asm, "b")
        sim.run(max_instructions=4_000_000)
        assert sim.system.context_switches > 2

    def test_pcb_addresses_are_distinct(self):
        assert pcb_address(0) != pcb_address(1)

    def test_crash_of_one_does_not_kill_other(self):
        crasher = "def main():\n    a = 1\n    b = 0\n" \
                  "    print_int(a // b)\n    exit(0)\n"
        sim = Simulator(SimConfig(quantum=300))
        from repro.compiler import compile_source
        sim.load(compile_source(crasher), "bad")
        sim.load(compile_source(COUNTER), "good")
        result = sim.run(max_instructions=4_000_000)
        assert result.status == "completed"
        assert sim.process(0).state.value == "crashed"
        assert sim.process(1).state.value == "exited"

    def test_address_spaces_are_isolated(self):
        # Both processes use the same symbols but distinct slots.
        source = """
A = iarray(4)
def main():
    A[0] = getpid() + 100
    sched_yield()
    print_int(A[0])
    exit(0)
"""
        from repro.compiler import compile_source
        asm = compile_source(source)
        sim = Simulator(SimConfig(quantum=50))
        sim.load(asm, "a")
        sim.load(asm, "b")
        sim.run(max_instructions=2_000_000)
        assert sim.process(0).console_text() == "100"
        assert sim.process(1).console_text() == "101"


class TestFIAcrossContextSwitches:
    """Section III.C: FI state follows the thread, not the core."""

    FI_PROGRAM = """
def main():
    fi_activate_inst(getpid())
    total = 0
    for i in range(200):
        total += i
        if i == 100:
            sched_yield()
    fi_activate_inst(getpid())
    print_int(total)
    exit(0)
"""

    def _run_pair(self, faults_text):
        from repro.compiler import compile_source
        asm = compile_source(self.FI_PROGRAM)
        injector = FaultInjector.from_text(faults_text)
        sim = Simulator(SimConfig(quantum=150), injector=injector)
        sim.load(asm, "a")
        sim.load(asm, "b")
        result = sim.run(max_instructions=4_000_000)
        assert result.status == "completed"
        return sim

    def test_golden_both_processes(self):
        sim = self._run_pair(
            "ExecutionStageInjectedFault Inst:900000 Flip:0 Threadid:0 "
            "system.cpu0 occ:1")
        assert sim.process(0).console_text() == "19900"
        assert sim.process(1).console_text() == "19900"
        assert sim.system.context_switches > 2

    def test_fault_targets_only_thread_zero(self):
        sim = self._run_pair(
            "ExecutionStageInjectedFault Inst:700 All1 Threadid:0 "
            "system.cpu0 occ:1")
        process_a = sim.process(0)
        process_b = sim.process(1)
        # Thread 1 must be untouched regardless of what happened to 0.
        assert process_b.state.value == "exited"
        assert process_b.console_text() == "19900"
        affected = (process_a.state.value == "crashed"
                    or process_a.console_text() != "19900")
        assert affected

    def test_fault_targets_only_thread_one(self):
        sim = self._run_pair(
            "ExecutionStageInjectedFault Inst:700 All1 Threadid:1 "
            "system.cpu0 occ:1")
        process_a = sim.process(0)
        process_b = sim.process(1)
        assert process_a.state.value == "exited"
        assert process_a.console_text() == "19900"
        affected = (process_b.state.value == "crashed"
                    or process_b.console_text() != "19900")
        assert affected

    def test_thread_counters_not_shared(self):
        sim = self._run_pair(
            "ExecutionStageInjectedFault Inst:900000 Flip:0 Threadid:0 "
            "system.cpu0 occ:1")
        windows = sim.injector.windows
        assert len(windows) == 2
        assert {w["thread_id"] for w in windows} == {0, 1}
        counts = [w["committed"] for w in windows]
        assert abs(counts[0] - counts[1]) <= 2
