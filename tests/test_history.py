"""Metrics history, SVG timeline rendering, merged alerts feed."""

import math
import threading

import pytest

from repro.telemetry import (
    Alert,
    HistoryRecorder,
    HistoryStore,
    alerts_feed,
    append_alerts,
    numeric_snapshot,
    render_timeline_svg,
)
from repro.telemetry.timeline import OUTCOME_COLORS


# -- snapshot filtering -------------------------------------------------------


class TestNumericSnapshot:
    def test_keeps_finite_numbers_only(self):
        flat = {
            "queue.depth": 3,
            "usage.kips{tenant=a}": 12.5,
            "flag": True,
            "label": "text",
            "bad": float("nan"),
            "worse": math.inf,
        }
        assert numeric_snapshot(flat) == {
            "queue.depth": 3.0,
            "usage.kips{tenant=a}": 12.5,
        }

    def test_drops_histogram_bucket_lines(self):
        flat = {
            "http.request_duration_seconds{route=/x}.samples": 4,
            "http.request_duration_seconds{route=/x}.le_0.01": 2,
            "http.request_duration_seconds{route=/x}.le_0.5": 4,
            "http.request_duration_seconds{route=/x}.overflow": 0,
        }
        assert numeric_snapshot(flat) == {
            "http.request_duration_seconds{route=/x}.samples": 4.0,
        }


# -- the store ----------------------------------------------------------------


class TestHistoryStore:
    def test_record_and_series_round_trip(self, tmp_path):
        store = HistoryStore(str(tmp_path / "h.db"))
        store.record({"a": 1.0, "b": 2.0}, when=10.0)
        store.record({"a": 1.5}, when=20.0)
        series = store.series()
        assert series == {"a": [[10.0, 1.0], [20.0, 1.5]],
                          "b": [[10.0, 2.0]]}
        store.close()

    def test_ring_retention_bounds_samples(self, tmp_path):
        store = HistoryStore(str(tmp_path / "h.db"), retention=3)
        for round_no in range(5):
            store.record({"s": float(round_no)},
                         when=float(round_no))
        points = store.series()["s"]
        assert points == [[2.0, 2.0], [3.0, 3.0], [4.0, 4.0]]
        # The round counter is monotone even though samples rolled.
        assert store.rounds == 5
        assert store.summary() == {"series": 1, "samples": 3,
                                   "rounds": 5, "retention": 3}
        store.close()

    def test_prefix_since_and_limit(self, tmp_path):
        store = HistoryStore(str(tmp_path / "h.db"))
        for when in (1.0, 2.0, 3.0):
            store.record({"queue.depth": when,
                          "store.bytes": when * 10}, when=when)
        assert set(store.series(prefix="queue.")) == {"queue.depth"}
        assert store.series(since=2.0)["queue.depth"] == [[3.0, 3.0]]
        assert store.series(limit=1)["store.bytes"] == [[3.0, 30.0]]
        assert store.series_names() == ["queue.depth", "store.bytes"]
        assert store.series_names("store.") == ["store.bytes"]
        store.close()

    def test_labelled_series_names_match_literally(self, tmp_path):
        # Series names carry labels ("usage.kips{tenant=a}"); GLOB
        # metacharacters in a prefix must match literally, never as
        # wildcards or character classes.
        store = HistoryStore(str(tmp_path / "h.db"))
        store.record({"usage.kips{tenant=a}": 1.0,
                      "x[1]": 2.0, "xz1": 3.0}, when=1.0)
        assert set(store.series(prefix="usage.kips")) \
            == {"usage.kips{tenant=a}"}
        assert set(store.series(prefix="x[1]")) == {"x[1]"}
        store.close()

    def test_store_is_thread_safe(self, tmp_path):
        store = HistoryStore(str(tmp_path / "h.db"), retention=10)

        def hammer(start):
            for index in range(25):
                store.record({"t": float(index)},
                             when=float(start + index))
                store.series()

        threads = [threading.Thread(target=hammer, args=(n * 100,))
                   for n in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert store.rounds == 75
        assert len(store.series()["t"]) == 10
        store.close()


# -- the recorder -------------------------------------------------------------


class TestHistoryRecorder:
    def test_sample_once_refreshes_then_snapshots(self, tmp_path):
        calls = []
        store = HistoryStore(str(tmp_path / "h.db"))

        def refresh():
            calls.append("refresh")

        def snapshot():
            calls.append("snapshot")
            return {"v": 7.0}

        recorder = HistoryRecorder(snapshot, store, interval=0,
                                   refresh=refresh,
                                   clock=lambda: 42.0)
        assert recorder.sample_once() == 1
        assert calls == ["refresh", "snapshot"]
        assert store.series() == {"v": [[42.0, 7.0]]}
        store.close()

    def test_nonpositive_interval_never_starts_a_thread(self, tmp_path):
        store = HistoryStore(str(tmp_path / "h.db"))
        recorder = HistoryRecorder(lambda: {}, store, interval=0)
        with recorder:
            assert not recorder.alive
        store.close()

    def test_beat_swallows_sampling_errors(self, tmp_path):
        store = HistoryStore(str(tmp_path / "h.db"))

        def explode():
            raise RuntimeError("disk full")

        recorder = HistoryRecorder(explode, store, interval=0)
        recorder._tick()  # must not raise
        with pytest.raises(RuntimeError):
            recorder.sample_once()  # tests do see failures
        store.close()

    def test_beat_thread_records_and_joins(self, tmp_path):
        store = HistoryStore(str(tmp_path / "h.db"))
        seen = threading.Event()

        def snapshot():
            seen.set()
            return {"beat": 1.0}

        with HistoryRecorder(snapshot, store, interval=0.01):
            assert seen.wait(timeout=5.0)
        assert store.rounds >= 1
        store.close()


# -- SVG lane rendering -------------------------------------------------------


def _trace():
    return {
        "traceEvents": [
            {"ph": "M", "pid": 1, "tid": 0, "name": "thread_name",
             "args": {"name": "w0"}},
            {"name": "exp_0000", "cat": "experiment", "ph": "X",
             "ts": 0, "dur": 1_000_000, "pid": 1, "tid": 0,
             "args": {"outcome": "sdc"}},
            {"name": "boot", "cat": "phase", "ph": "X", "ts": 0,
             "dur": 400_000, "pid": 1, "tid": 0},
            {"name": "injection", "cat": "injection", "ph": "i",
             "s": "t", "ts": 600_000, "pid": 1, "tid": 0,
             "args": {"tick": 42}},
        ],
        "displayTimeUnit": "ms",
        "otherData": {"timebase": "host"},
    }


class TestRenderTimelineSvg:
    def test_renders_lanes_bars_and_markers(self):
        svg = render_timeline_svg(_trace())
        assert svg.startswith("<svg ")
        assert svg.rstrip().endswith("</svg>")
        assert ">w0</text>" in svg
        assert OUTCOME_COLORS["sdc"] in svg      # outcome fill
        assert "exp_0000" in svg                 # hover tooltip
        assert "injection @ 42" in svg           # instant marker
        assert "1.00 s" in svg                   # host-time axis

    def test_deterministic_output(self):
        assert render_timeline_svg(_trace()) \
            == render_timeline_svg(_trace())

    def test_escapes_markup_in_names(self):
        trace = _trace()
        trace["traceEvents"][1]["name"] = "<script>alert(1)</script>"
        svg = render_timeline_svg(trace)
        assert "<script>" not in svg
        assert "&lt;script&gt;" in svg

    def test_empty_trace_is_still_an_svg(self):
        svg = render_timeline_svg({"traceEvents": [],
                                   "otherData": {"timebase": "host"}})
        assert svg.startswith("<svg ")


# -- merged alerts feed -------------------------------------------------------


class TestAlertsFeed:
    def _alert(self, rule, when, severity="warning", worker=None):
        return Alert(rule=rule, severity=severity, worker=worker,
                     message=f"{rule} fired", time=when)

    def test_merges_journals_newest_first(self, tmp_path):
        share_a = tmp_path / "a"
        share_b = tmp_path / "b"
        share_a.mkdir()
        share_b.mkdir()
        append_alerts(str(share_a),
                      [self._alert("dead_worker", 10.0,
                                   severity="critical", worker="w0")])
        append_alerts(str(share_b),
                      [self._alert("outcome_drift", 20.0)])
        feed = alerts_feed({"job-a": str(share_a),
                            "job-b": str(share_b)})
        assert [(e["share"], e["rule"]) for e in feed] \
            == [("job-b", "outcome_drift"), ("job-a", "dead_worker")]
        assert all("live" not in e for e in feed)

    def test_missing_share_contributes_nothing(self, tmp_path):
        feed = alerts_feed({"gone": str(tmp_path / "nope")})
        assert feed == []

    def test_limit_caps_the_feed(self, tmp_path):
        share = tmp_path / "s"
        share.mkdir()
        append_alerts(str(share), [
            self._alert("dead_worker", 1.0, worker=f"w{n}")
            for n in range(5)])
        assert len(alerts_feed({"j": str(share)}, limit=2)) == 2

    def test_live_evaluation_is_read_only(self, tmp_path):
        share = tmp_path / "s"
        share.mkdir()
        feed = alerts_feed({"j": str(share)}, live=True)
        # An empty share fires nothing and must not grow a journal.
        assert feed == []
        assert not (share / "alerts.jsonl").exists()
