"""O3-specific microarchitectural behaviour.

The paper's methodology depends on speculative execution: "the
simulation continues until the affected instruction commits or
squashes".  These tests exercise the squash paths directly.
"""

from conftest import run_asm

# An always-taken conditional branch the tournament predictor initially
# mispredicts (weakly-not-taken counters).  The divq ahead of it stalls
# the commit point (ROB backlog), so the speculative fall-through — a
# string of distinctive mulq instructions — is fetched with *later*
# instruction counts than the branch itself, where a scheduled fetch
# fault can land before being squashed.
WRONG_PATH_ASM = """
main:
    ldi a0, 0
    fi_activate
    clr t0
    ldi t2, 100
    divq t2, 3, t2        # 12-cycle head stall -> ROB backlog
    addq t1, 1, t1
    addq t1, 1, t1
    addq t1, 1, t1        # places the branch at the end of fetch group 2
    beq zero, skip        # always taken; cold predictor says not-taken
    mulq t3, t3, t3       # wrong path: fetched, never commits
    mulq t3, t3, t3
    mulq t3, t3, t3
    mulq t3, t3, t3
    mulq t3, t3, t3
    mulq t3, t3, t3
skip:
    addq t0, 1, t0
    addq t0, 1, t0
    addq t0, 1, t0
    fi_activate
    mov t0, a0
    ldi v0, 5
    callsys
    ldi v0, 0
    ldi a0, 0
    callsys
"""

GOLDEN = "3"


def _run(model, fault_line=""):
    sim, result = run_asm(WRONG_PATH_ASM, model=model,
                          faults_text=fault_line,
                          max_instructions=100_000)
    return sim


class TestWrongPathFaultAbsorption:
    def test_golden_same_on_both_models(self):
        assert _run("atomic").console_text() == GOLDEN
        assert _run("o3").console_text() == GOLDEN

    def test_wrong_path_instructions_are_fetched_and_squashed(self):
        sim = _run("o3")
        assert sim.cpu.squashed_instructions > 0
        assert sim.cpu.predictor.mispredicts > 0

    def test_fetch_fault_absorbed_by_squashed_instruction(self):
        """Scan fault times: at least one fetch-stage fault must land on
        a speculative mulq (wrong path), be recorded, and leave the
        output bit-identical — the squash absorbed it."""
        absorbed = []
        for time in range(1, 16):
            line = (f"FetchStageInjectedFault Inst:{time} All1 "
                    "Threadid:0 system.cpu0 occ:1")
            sim = _run("o3", line)
            records = sim.injector.records
            if not records:
                continue
            if "mulq" in records[0].asm and \
                    sim.console_text() == GOLDEN and \
                    sim.process(0).state.value == "exited":
                absorbed.append((time, records[0].asm))
        assert absorbed, \
            "no fetch fault was absorbed by a squashed instruction"

    def test_same_fault_times_in_atomic_never_hit_wrong_path(self):
        """Atomic never fetches the wrong path: no injection record can
        name a mulq (those instructions are simply skipped)."""
        for time in range(1, 16):
            line = (f"FetchStageInjectedFault Inst:{time} All1 "
                    "Threadid:0 system.cpu0 occ:1")
            sim = _run("atomic", line)
            for record in sim.injector.records:
                assert "mulq" not in record.asm


class TestO3ExceptionDeferral:
    def test_wrong_path_fetch_into_unmapped_memory_is_harmless(self):
        """A speculative fetch walking into unmapped memory must not
        crash the run if the guilty entry never commits."""
        asm = """
main:
    ldi t0, 3
loop:
    subq t0, 1, t0
    bgt t0, loop
    ldi a0, 42
    ldi v0, 5
    callsys
    ldi v0, 0
    ldi a0, 0
    callsys
"""
        # The backward loop branch mispredicts on exit; the front end
        # keeps fetching past it but within mapped text, so simply check
        # the run stays healthy with mispredicts present.
        sim, result = run_asm(asm, model="o3", max_instructions=50_000)
        assert result.status == "completed"
        assert sim.console_text() == "42"

    def test_committed_illegal_fetch_still_crashes(self):
        asm = """
main:
    ldi t0, 0x2000
    jmp zero, (t0)
"""
        sim, _ = run_asm(asm, model="o3", max_instructions=50_000)
        assert sim.process(0).state.value == "crashed"


class TestO3Determinism:
    def test_two_runs_identical_stats(self):
        dumps = set()
        for _ in range(2):
            sim = _run("o3")
            dumps.add(sim.stats_dump())
        assert len(dumps) == 1

    def test_rob_capacity_respected(self):
        sim, _ = run_asm(WRONG_PATH_ASM, model="o3",
                         max_instructions=100_000)
        assert len(sim.cpu.rob) <= sim.cpu.rob_size
