"""Span tracing, timeline export, watchdog and dashboard tests."""

import json
import os
import time

import pytest

from repro.cli import main
from repro.campaign import CampaignRunner, SEUGenerator, SharedDirCampaign
from repro.compiler import compile_source
from repro.core.injector import FaultInjector
from repro.sim.checkpoint import dumps_checkpoint, restore_checkpoint
from repro.sim.config import SimConfig
from repro.sim.simulator import Simulator
from repro.telemetry.campaign import (read_status, render_status,
                                      write_heartbeat)
from repro.telemetry.spans import (CAMPAIGN_PATH, JsonlSpanSink,
                                   ListSpanSink, TraceContext, Tracer,
                                   load_spans, span_log_path)
from repro.telemetry.timeline import (build_timeline, render_timeline,
                                      validate_trace)
from repro.telemetry.watchdog import (WatchdogConfig, append_alerts,
                                      dashboard_view, evaluate_alerts,
                                      read_alerts, render_dashboard)
from repro.workloads import build

CPU_MODELS = ("atomic", "timing", "inorder", "o3")


@pytest.fixture(scope="module")
def runner():
    return CampaignRunner(build("pi", "tiny"))


def _drain_with_tracer(share_dir, runner, seed, worker="w0",
                       experiments=4):
    """Publish *experiments* and drain them with one traced worker."""
    campaign = SharedDirCampaign(share_dir, "pi", "tiny",
                                 heartbeat_interval=0.0)
    generator = SEUGenerator(runner.golden.profile, seed=seed)
    campaign.publish(runner, generator.batch(experiments), seed=seed,
                     trace=True)
    tracer = Tracer(TraceContext(seed),
                    sink=JsonlSpanSink(span_log_path(share_dir, worker)),
                    worker=worker, base_path=CAMPAIGN_PATH)
    runner.enable_tracing(tracer)
    try:
        completed = campaign.worker_loop(worker, runner, tracer=tracer)
    finally:
        runner.tracer = None
        tracer.close()
    return campaign, completed


@pytest.fixture(scope="module")
def traced_share(tmp_path_factory, runner):
    share = str(tmp_path_factory.mktemp("traced-share"))
    _campaign, completed = _drain_with_tracer(share, runner, seed=21)
    assert completed == 4
    return share


class TestTraceContext:
    def test_ids_are_deterministic(self):
        a = TraceContext(42)
        b = TraceContext(42)
        assert a.trace_id == b.trace_id
        assert a.span_id("/campaign/exp_0001") == \
            b.span_id("/campaign/exp_0001")

    def test_seed_and_path_change_ids(self):
        a = TraceContext(42)
        b = TraceContext(43)
        assert a.trace_id != b.trace_id
        assert a.span_id("/campaign/exp_0001") != \
            a.span_id("/campaign/exp_0002")


class TestTracer:
    def test_nesting_and_two_record_protocol(self):
        sink = ListSpanSink()
        tracer = Tracer(TraceContext(7), sink=sink, worker="w0")
        outer = tracer.start("campaign")
        inner = tracer.start("exp_0000", tick=0)
        assert tracer.current is inner
        assert inner.parent_id == outer.span_id
        tracer.finish(inner, tick=50)
        tracer.finish(outer)
        kinds = [r["ev"] for r in sink.records]
        assert kinds == ["open", "open", "span", "span"]
        assert "t1" not in sink.records[0]
        closed = sink.records[2]
        assert closed["name"] == "exp_0000"
        assert closed["tick0"] == 0 and closed["tick1"] == 50

    def test_repeated_names_get_distinct_paths(self):
        tracer = Tracer(TraceContext(7))
        first = tracer.start("save")
        tracer.finish(first)
        second = tracer.start("save")
        tracer.finish(second)
        assert first.path != second.path
        assert first.span_id != second.span_id

    def test_base_path_parents_under_remote_campaign_span(self):
        context = TraceContext(9)
        coordinator = Tracer(context, worker="coordinator")
        root = coordinator.start("campaign")
        worker = Tracer(context, worker="w3", base_path=CAMPAIGN_PATH)
        span = worker.start("exp_0002")
        assert root.path == CAMPAIGN_PATH
        assert span.parent_id == root.span_id

    def test_retro_record_and_contextmanager(self):
        sink = ListSpanSink()
        tracer = Tracer(TraceContext(7), sink=sink)
        with tracer.span("checkpoint_save", tick=5) as span:
            assert tracer.current is span
        parent = tracer.start("exp")
        child = tracer.record("boot", 1.0, 1.5, tick0=0, tick1=0,
                              parent=parent, kind="phase")
        assert child.t1 - child.t0 == pytest.approx(0.5)
        assert child.parent_id == parent.span_id


class TestCheckpointSpanContinuity:
    @pytest.mark.parametrize("model", CPU_MODELS)
    def test_trace_context_survives_save_restore(self, model):
        spec = build("pi", "tiny")
        asm = compile_source(spec.source)
        context = TraceContext(11)
        sink = ListSpanSink()
        tracer = Tracer(context, sink=sink, worker="w0")
        sim = Simulator(SimConfig(cpu_model=model),
                        injector=FaultInjector())
        sim.load(asm, "pi")
        sim.tracer = tracer
        holder = {}
        sim.on_checkpoint = lambda s: holder.__setitem__(
            "blob", dumps_checkpoint(s))
        sim.run(until_checkpoint=True, max_instructions=50_000_000)
        assert "blob" in holder
        saves = [r for r in sink.records
                 if r["ev"] == "span" and r["name"] == "checkpoint_save"]
        assert len(saves) == 1
        assert saves[0]["trace"] == context.trace_id

        restored = restore_checkpoint(holder["blob"], tracer=tracer)
        assert restored.tracer is tracer
        restores = [r for r in sink.records if r["ev"] == "span"
                    and r["name"] == "checkpoint_restore"]
        assert len(restores) == 1
        assert restores[0]["trace"] == saves[0]["trace"]
        assert restores[0]["tick1"] == restored.tick
        result = restored.run(max_instructions=50_000_000)
        assert result.status == "completed"


class TestRunnerSpans:
    def test_phase_children_partition_wall_seconds(self, runner):
        sink = ListSpanSink()
        tracer = Tracer(TraceContext(3), sink=sink, worker="w0",
                        base_path=CAMPAIGN_PATH)
        runner.enable_tracing(tracer)
        try:
            generator = SEUGenerator(runner.golden.profile, seed=3)
            result = runner.run_experiment(generator.batch(1)[0])
        finally:
            runner.tracer = None
        spans = [r for r in sink.records if r["ev"] == "span"]
        experiments = [r for r in spans
                       if r["attrs"].get("kind") == "experiment"]
        assert len(experiments) == 1
        experiment = experiments[0]
        assert experiment["parent"] == \
            TraceContext(3).span_id(CAMPAIGN_PATH)
        assert experiment["attrs"]["outcome"] == result.outcome.value
        assert experiment["attrs"]["wall_seconds"] == \
            result.wall_seconds
        phases = [r for r in spans
                  if r["attrs"].get("kind") == "phase"]
        assert [p["name"] for p in phases] == \
            ["boot", "window", "injection", "drain"]
        for phase in phases:
            assert phase["parent"] == experiment["span"]
        total = sum(p["t1"] - p["t0"] for p in phases)
        assert total == pytest.approx(result.wall_seconds, abs=1e-6)
        # Edges are contiguous from the experiment's start.
        edge = experiment["t0"]
        for phase in phases:
            assert phase["t0"] == pytest.approx(edge, abs=1e-9)
            edge = phase["t1"]
        restores = [r for r in spans
                    if r["name"] == "checkpoint_restore"]
        assert len(restores) == 1
        assert restores[0]["parent"] == experiment["span"]


class TestSharedCampaignTracing:
    def test_worker_loop_appends_span_logs(self, traced_share):
        finished, opened = load_spans(traced_share)
        assert not opened
        context = TraceContext(21)
        experiments = [r for r in finished
                       if r["attrs"].get("kind") == "experiment"]
        assert sorted(r["name"] for r in experiments) == \
            [f"exp_{i:04d}" for i in range(4)]
        for record in experiments:
            assert record["trace"] == context.trace_id
            assert record["parent"] == context.span_id(CAMPAIGN_PATH)
            assert isinstance(record["tick0"], int)
            assert isinstance(record["tick1"], int)

    def test_published_trace_flag_round_trips(self, traced_share):
        campaign = SharedDirCampaign(traced_share, "pi", "tiny")
        assert campaign.published_trace() is True


class TestTimeline:
    def test_host_timeline_is_valid_and_partitions_exactly(
            self, traced_share):
        payload = build_timeline(traced_share, timebase="host")
        assert validate_trace(payload) > 0
        events = payload["traceEvents"]
        experiments = [e for e in events
                       if e.get("cat") == "experiment"]
        assert len(experiments) == 4
        for index, event in enumerate(events):
            if event.get("cat") != "experiment":
                continue
            wall = event["args"]["wall_seconds"]
            assert event["dur"] == int(round(wall * 1e6))
            children = events[index + 1:index + 5]
            assert [c["name"] for c in children] == \
                ["boot", "window", "injection", "drain"]
            assert sum(c["dur"] for c in children) == event["dur"]
            edge = event["ts"]
            for child in children:
                assert child["ts"] == edge
                edge += child["dur"]

    def test_injection_instants_mark_injected_runs(self, traced_share):
        payload = build_timeline(traced_share, timebase="host")
        events = payload["traceEvents"]
        injected = [e for e in events if e.get("cat") == "experiment"
                    and e["args"].get("injected")]
        instants = [e for e in events if e.get("cat") == "injection"]
        assert len(instants) == len(injected)
        for instant in instants:
            assert instant["ph"] == "i" and instant["s"] == "t"

    def test_ticks_timeline_identical_across_worker_interleavings(
            self, tmp_path, runner):
        seed = 33
        share_a = str(tmp_path / "a")
        _drain_with_tracer(share_a, runner, seed=seed)

        share_b = str(tmp_path / "b")
        campaign = SharedDirCampaign(share_b, "pi", "tiny",
                                     heartbeat_interval=0.0)
        generator = SEUGenerator(runner.golden.profile, seed=seed)
        campaign.publish(runner, generator.batch(4), seed=seed,
                         trace=True)
        tracers = {
            worker: Tracer(
                TraceContext(seed),
                sink=JsonlSpanSink(span_log_path(share_b, worker)),
                worker=worker, base_path=CAMPAIGN_PATH)
            for worker in ("w0", "w1")}
        try:
            for worker in ("w1", "w0", "w1", "w0"):
                runner.enable_tracing(tracers[worker])
                assert campaign.run_one(worker, runner,
                                        tracer=tracers[worker])
        finally:
            runner.tracer = None
            for tracer in tracers.values():
                tracer.close()

        text_a = render_timeline(share_a, timebase="ticks", slots=2)
        text_b = render_timeline(share_b, timebase="ticks", slots=2)
        assert text_a == text_b
        assert validate_trace(text_a) > 0
        # ... and the render itself is stable byte-for-byte.
        assert render_timeline(share_a, timebase="ticks",
                               slots=2) == text_a

    def test_validate_trace_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_trace(json.dumps({"traceEvents": "nope"}))
        with pytest.raises(ValueError):
            validate_trace(json.dumps(
                {"traceEvents": [{"ph": "X", "name": "x", "ts": 0,
                                  "dur": -5, "pid": 1, "tid": 0}]}))
        with pytest.raises(ValueError):
            build_timeline(".", timebase="bogus")


class TestZeroOverheadWhenDisabled:
    def test_untraced_share_layout_is_unchanged(self, tmp_path, runner):
        share = str(tmp_path)
        campaign = SharedDirCampaign(share, "pi", "tiny",
                                     heartbeat_interval=0.0)
        generator = SEUGenerator(runner.golden.profile, seed=5)
        campaign.publish(runner, generator.batch(2), seed=5)
        assert runner.tracer is None
        completed = campaign.worker_loop("w0", runner)
        assert completed == 2
        assert sorted(os.listdir(share)) == [
            "checkpoint.bin", "claimed", "claims", "golden.pkl",
            "heartbeats", "manifests", "results", "todo",
            "workload.json"]
        workload = json.loads(
            (tmp_path / "workload.json").read_text())
        assert "trace" not in workload
        finished, opened = load_spans(share)
        assert finished == [] and opened == []
        assert read_alerts(share) == []

    def test_untraced_result_keys_unchanged(self, runner):
        generator = SEUGenerator(runner.golden.profile, seed=6)
        result = runner.run_experiment(generator.batch(1)[0])
        assert sorted(result.as_dict()) == [
            "crash_reason", "divergence", "fault", "fault_file",
            "injected", "injection_asm", "injection_detail",
            "injection_pc", "instructions", "outcome", "phases",
            "predicted", "propagated", "propagation", "seed", "ticks",
            "time_fraction", "wall_seconds", "weight", "workload"]


class TestHeartbeatEnrichment:
    def test_heartbeat_carries_identity_and_experiment(self, tmp_path):
        path = write_heartbeat(str(tmp_path), "w0", 3,
                               current_experiment="exp_0007")
        beat = json.loads(open(path).read())
        assert beat["worker"] == "w0"
        assert beat["pid"] == os.getpid()
        assert beat["hostname"]
        assert beat["current_experiment"] == "exp_0007"
        assert beat["completed"] == 3

    def test_status_annotates_and_renders_workers(self, tmp_path):
        clock = {"now": 1000.0}
        write_heartbeat(str(tmp_path), "w0", 2,
                        current_experiment="exp_0001",
                        clock=lambda: clock["now"])
        write_heartbeat(str(tmp_path), "w1", 5,
                        clock=lambda: clock["now"] - 500.0)
        status = read_status(str(tmp_path),
                             clock=lambda: clock["now"])
        assert status.workers["w0"]["live"] is True
        assert status.workers["w1"]["live"] is False
        assert status.workers["w1"]["age"] == pytest.approx(500.0)
        assert status.live_workers == 1
        assert status.as_dict()["workers"]["w0"][
            "current_experiment"] == "exp_0001"
        text = render_status(status)
        assert "w0: live" in text
        assert "running=exp_0001" in text
        assert "w1: silent" in text


class TestHeartbeatLivenessRecovery:
    def test_live_worker_is_never_robbed(self, tmp_path, runner):
        clock = {"now": 1000.0}
        campaign = SharedDirCampaign(str(tmp_path), "pi", "tiny",
                                     stale_claim_seconds=600.0,
                                     heartbeat_timeout=120.0,
                                     clock=lambda: clock["now"])
        generator = SEUGenerator(runner.golden.profile, seed=13)
        campaign.publish(runner, generator.batch(1))
        assert campaign.claim("w0") is not None
        # w0 is slow but alive: its claim ages past the stale limit
        # while its heartbeat stays fresh.
        clock["now"] += 601.0
        write_heartbeat(str(tmp_path), "w0", 0,
                        current_experiment="exp_0000",
                        clock=lambda: clock["now"])
        assert campaign.claim("w1") is None
        entry = json.loads(
            (tmp_path / "claims" / "exp_0000.txt.claim").read_text())
        assert entry["worker"] == "w0"

    def test_dead_heartbeat_is_reclaimed_before_stale_limit(
            self, tmp_path, runner):
        clock = {"now": 1000.0}
        campaign = SharedDirCampaign(str(tmp_path), "pi", "tiny",
                                     stale_claim_seconds=600.0,
                                     heartbeat_timeout=120.0,
                                     clock=lambda: clock["now"])
        generator = SEUGenerator(runner.golden.profile, seed=14)
        campaign.publish(runner, generator.batch(1))
        write_heartbeat(str(tmp_path), "w0", 0,
                        clock=lambda: clock["now"])
        assert campaign.claim("w0") is not None
        # 130s later the claim is far from stale (600s) but the
        # heartbeat has aged out (120s): reclaim immediately.
        clock["now"] += 130.0
        stolen = campaign.claim("w1")
        assert stolen is not None
        assert os.path.basename(stolen) == "w1_exp_0000.txt"


def _touch(path, mtime):
    os.utime(path, (mtime, mtime))


class TestWatchdogRules:
    def test_dead_worker_alert_names_held_experiment(self, tmp_path):
        share = str(tmp_path)
        (tmp_path / "claims").mkdir()
        (tmp_path / "claims" / "exp_0000.txt.claim").write_text(
            json.dumps({"worker": "w0", "pid": 1, "time": 1000.0}))
        write_heartbeat(share, "w0", 0,
                        current_experiment="exp_0000",
                        clock=lambda: 1000.0)
        _snap, alerts = evaluate_alerts(share, clock=lambda: 1200.0)
        dead = [a for a in alerts if a.rule == "dead-worker"]
        assert len(dead) == 1
        assert dead[0].severity == "critical"
        assert dead[0].worker == "w0"
        assert dead[0].experiment == "exp_0000"

    def test_fresh_heartbeat_raises_no_dead_worker(self, tmp_path):
        share = str(tmp_path)
        write_heartbeat(share, "w0", 0, clock=lambda: 1000.0)
        _snap, alerts = evaluate_alerts(share, clock=lambda: 1050.0)
        assert not [a for a in alerts if a.rule == "dead-worker"]

    def test_stalled_experiment_alert(self, tmp_path):
        share = str(tmp_path)
        (tmp_path / "results").mkdir()
        for index in range(3):
            (tmp_path / "results" / f"exp_{index:04d}.json").write_text(
                json.dumps({"outcome": "masked", "wall_seconds": 1.0,
                            "instructions": 1000}))
        (tmp_path / "spans").mkdir()
        (tmp_path / "spans" / "w0.jsonl").write_text(json.dumps(
            {"ev": "open", "name": "exp_0009", "span": "s9",
             "parent": None, "trace": "t", "worker": "w0",
             "t0": 1000.0, "tick0": 0,
             "attrs": {"kind": "experiment",
                       "experiment": "exp_0009"}}) + "\n")
        write_heartbeat(share, "w0", 3, current_experiment="exp_0009",
                        clock=lambda: 1090.0)
        _snap, alerts = evaluate_alerts(share, clock=lambda: 1100.0)
        stalled = [a for a in alerts if a.rule == "stalled-experiment"]
        assert len(stalled) == 1
        assert stalled[0].experiment == "exp_0009"
        assert stalled[0].worker == "w0"
        # A dead worker's open span is reported as dead-worker instead.
        _snap, alerts = evaluate_alerts(share, clock=lambda: 1300.0)
        assert not [a for a in alerts
                    if a.rule == "stalled-experiment"]
        assert [a for a in alerts if a.rule == "dead-worker"]

    def test_throughput_collapse_alert(self, tmp_path):
        share = str(tmp_path)
        (tmp_path / "results").mkdir()
        (tmp_path / "todo").mkdir()
        (tmp_path / "todo" / "exp_0009.txt").write_text("x")
        for index in range(3):
            path = tmp_path / "results" / f"exp_{index:04d}.json"
            path.write_text(json.dumps(
                {"outcome": "masked", "wall_seconds": 1.0}))
            _touch(path, 1000.0 + index)
        _snap, alerts = evaluate_alerts(share, clock=lambda: 1100.0)
        collapsed = [a for a in alerts
                     if a.rule == "throughput-collapse"]
        assert len(collapsed) == 1
        # Right after a result, no alert.
        _snap, alerts = evaluate_alerts(share, clock=lambda: 1004.0)
        assert not [a for a in alerts
                    if a.rule == "throughput-collapse"]

    def test_outcome_drift_alert(self, tmp_path):
        share = str(tmp_path)
        (tmp_path / "results").mkdir()
        outcomes = ["masked"] * 15 + ["sdc"] * 20
        for index, outcome in enumerate(outcomes):
            path = tmp_path / "results" / f"exp_{index:04d}.json"
            path.write_text(json.dumps({"outcome": outcome}))
            _touch(path, 1000.0 + index)
        _snap, alerts = evaluate_alerts(share, clock=lambda: 1040.0)
        drift = [a for a in alerts if a.rule == "outcome-drift"]
        assert {a.experiment for a in drift} == {"masked", "sdc"}

    def test_append_alerts_dedups(self, tmp_path):
        share = str(tmp_path)
        write_heartbeat(share, "w0", 0, clock=lambda: 1000.0)
        _snap, alerts = evaluate_alerts(share, clock=lambda: 1500.0)
        assert alerts
        assert append_alerts(share, alerts)
        assert append_alerts(share, alerts) == []
        entries = read_alerts(share)
        assert len(entries) == len(alerts)
        assert all("rule" in entry for entry in entries)

    def test_dashboard_view_renders_workers_and_alerts(self, tmp_path):
        share = str(tmp_path)
        write_heartbeat(share, "w0", 2, current_experiment="exp_0003",
                        clock=lambda: 1000.0)
        snap, alerts = evaluate_alerts(share, clock=lambda: 1010.0)
        text = dashboard_view(snap, alerts)
        assert "w0" in text
        assert "exp_0003" in text
        assert "alerts" in text


class TestWatchdogIntegration:
    def test_dead_worker_alert_and_recovery_completes_campaign(
            self, tmp_path, runner):
        clock = {"now": 1000.0}
        share = str(tmp_path)
        campaign = SharedDirCampaign(share, "pi", "tiny",
                                     stale_claim_seconds=600.0,
                                     heartbeat_timeout=120.0,
                                     heartbeat_interval=0.0,
                                     clock=lambda: clock["now"])
        generator = SEUGenerator(runner.golden.profile, seed=15)
        campaign.publish(runner, generator.batch(3), seed=15)
        # w0 claims exp_0000, heartbeats once ... and dies.
        claimed = campaign.claim("w0")
        assert os.path.basename(claimed) == "w0_exp_0000.txt"
        write_heartbeat(share, "w0", 0, current_experiment="exp_0000",
                        clock=lambda: clock["now"])
        clock["now"] += 130.0
        _snap, alerts = evaluate_alerts(
            share, WatchdogConfig(heartbeat_timeout=120.0),
            clock=lambda: clock["now"])
        dead = [a for a in alerts if a.rule == "dead-worker"]
        assert len(dead) == 1
        assert dead[0].worker == "w0"
        assert dead[0].experiment == "exp_0000"
        # The campaign still completes: w1 reclaims w0's experiment via
        # heartbeat-liveness recovery and drains the queue.
        completed = campaign.worker_loop("w1", runner)
        assert completed == 3
        assert len(campaign.collect()) == 3


class TestCli:
    def test_timeline_command_emits_valid_trace(self, traced_share,
                                                capsys, tmp_path):
        out_path = str(tmp_path / "trace.json")
        assert main(["timeline", traced_share, "-o", out_path]) == 0
        with open(out_path, "r", encoding="utf-8") as handle:
            text = handle.read()
        assert validate_trace(text) > 0
        err = capsys.readouterr().err
        assert "perfetto" in err.lower()

    def test_timeline_command_stdout_ticks(self, traced_share, capsys):
        assert main(["timeline", traced_share, "--timebase", "ticks",
                     "--slots", "2"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out)
        assert payload["otherData"]["timebase"] == "ticks"

    def test_dashboard_once(self, traced_share, capsys):
        assert main(["dashboard", traced_share, "--once"]) == 0
        out = capsys.readouterr().out
        assert "alerts" in out
        assert "experiments" in out

    def test_dashboard_once_journals_alerts(self, tmp_path, capsys):
        share = str(tmp_path)
        write_heartbeat(share, "w0", 0,
                        clock=lambda: time.time() - 500.0)
        assert main(["dashboard", share, "--once"]) == 0
        assert read_alerts(share)
        capsys.readouterr()

    def test_status_watch_rehomes_screen(self, traced_share, capsys):
        assert main(["status", traced_share, "--watch", "0.01",
                     "--watch-count", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("\x1b[H\x1b[2J") == 2
        assert "experiments" in out


class TestRootParent:
    def test_root_parent_rehomes_root_without_changing_ids(self):
        context = TraceContext(5)
        plain = Tracer(context)
        unrooted = plain.finish(plain.start("campaign"))
        rooted_tracer = Tracer(context, root_parent="feedface00000000")
        rooted = rooted_tracer.finish(rooted_tracer.start("campaign"))
        # Same path, same id — only the root's parent changes, so
        # worker id arithmetic is untouched.
        assert rooted.path == unrooted.path == "/campaign"
        assert rooted.span_id == unrooted.span_id
        assert unrooted.parent_id is None
        assert rooted.parent_id == "feedface00000000"

    def test_children_still_parent_to_their_own_root(self):
        tracer = Tracer(TraceContext(5), root_parent="feedface00000000")
        root = tracer.start("campaign")
        child = tracer.finish(tracer.start("exp_0000"))
        tracer.finish(root)
        assert child.parent_id == root.span_id

    def test_base_path_wins_over_root_parent(self):
        """A worker tracer anchored under /campaign keeps its computed
        parent; root_parent only applies to true roots."""
        context = TraceContext(5)
        tracer = Tracer(context, base_path=CAMPAIGN_PATH,
                        root_parent="feedface00000000")
        span = tracer.finish(tracer.start("exp_0000"))
        assert span.parent_id == context.span_id(CAMPAIGN_PATH)


class TestSpanTree:
    def test_render_is_deterministic(self, traced_share):
        from repro.telemetry import render_span_tree
        assert render_span_tree(traced_share) \
            == render_span_tree(traced_share)

    def test_phases_nest_under_their_experiment(self, traced_share):
        from repro.telemetry import render_span_tree
        lines = render_span_tree(traced_share).splitlines()
        exp_depths = [line for line in lines
                      if line.lstrip().startswith("exp_")]
        assert exp_depths
        # Orphaned experiment spans (no coordinator span on this
        # share) render as roots; their phase children indent one
        # level deeper.
        assert any(line.startswith("exp_") for line in exp_depths)
        index = next(i for i, line in enumerate(lines)
                     if line.startswith("exp_"))
        assert lines[index + 1].startswith("  ")

    def test_empty_share_renders_empty(self, tmp_path):
        from repro.telemetry import render_span_tree
        assert render_span_tree(str(tmp_path)) == ""


class TestZeroOverheadServicePlane:
    """PR 7's observability must cost nothing when it is off: plain
    campaign shares carry no request context, and the status/dashboard
    render paths stay byte-identical run over run."""

    def test_untraced_workload_has_no_request_context(self, tmp_path,
                                                      runner):
        share = str(tmp_path)
        campaign = SharedDirCampaign(share, "pi", "tiny",
                                     heartbeat_interval=0.0)
        generator = SEUGenerator(runner.golden.profile, seed=9)
        campaign.publish(runner, generator.batch(1), seed=9)
        workload = json.loads((tmp_path / "workload.json").read_text())
        assert "request" not in workload
        assert "trace" not in workload
        assert campaign.published_request() is None

    def test_traced_publish_without_request_stays_unrooted(
            self, tmp_path, runner):
        share = str(tmp_path)
        campaign = SharedDirCampaign(share, "pi", "tiny",
                                     heartbeat_interval=0.0)
        generator = SEUGenerator(runner.golden.profile, seed=9)
        campaign.publish(runner, generator.batch(1), seed=9,
                         trace=True)
        workload = json.loads((tmp_path / "workload.json").read_text())
        assert workload["trace"] is True
        assert "request" not in workload

    def test_status_and_dashboard_render_byte_identically(
            self, tmp_path, runner):
        share = str(tmp_path)
        campaign = SharedDirCampaign(share, "pi", "tiny",
                                     heartbeat_interval=0.0)
        generator = SEUGenerator(runner.golden.profile, seed=9)
        campaign.publish(runner, generator.batch(2), seed=9)
        campaign.worker_loop("w0", runner)
        clock = lambda: 10_000.0  # noqa: E731 - frozen render clock
        first = render_status(read_status(share, clock=clock))
        second = render_status(read_status(share, clock=clock))
        assert first == second
        config = WatchdogConfig()
        dash_a = render_dashboard(share, config, clock=clock)
        dash_b = render_dashboard(share, config, clock=clock)
        assert dash_a[0] == dash_b[0]
        # Rendering is read-only: no spans/, no logs/, nothing new.
        assert sorted(os.listdir(share)) == [
            "checkpoint.bin", "claimed", "claims", "golden.pkl",
            "heartbeats", "manifests", "results", "todo",
            "workload.json"]


class TestOutcomeDriftWilson:
    """The outcome-drift rule compares Wilson score intervals when both
    sides carry enough samples, falling back to the raw rate delta for
    tiny windows."""

    @staticmethod
    def _snap(outcomes):
        from repro.telemetry.campaign import CampaignStatus
        from repro.telemetry.watchdog import ShareSnapshot
        return ShareSnapshot(now=1000.0, status=CampaignStatus(),
                             outcome_sequence=list(outcomes))

    def test_overlapping_intervals_suppress_raw_threshold_drift(self):
        # 12/30 sdc baseline vs 14/20 recent: raw drift 30% exceeds
        # the 25% threshold, but the 95% intervals overlap
        # ([25%,58%] vs [48%,85%]) — not statistically significant.
        from repro.telemetry.watchdog import rule_outcome_drift
        sequence = (["sdc"] * 12 + ["masked"] * 18 +
                    ["sdc"] * 14 + ["masked"] * 6)
        alerts = rule_outcome_drift(self._snap(sequence),
                                    WatchdogConfig())
        assert alerts == []

    def test_disjoint_intervals_fire_and_cite_wilson(self):
        from repro.telemetry.watchdog import rule_outcome_drift
        sequence = ["masked"] * 30 + ["sdc"] * 20
        alerts = rule_outcome_drift(self._snap(sequence),
                                    WatchdogConfig())
        assert {a.experiment for a in alerts} == {"masked", "sdc"}
        assert all("Wilson" in a.message and "disjoint" in a.message
                   for a in alerts)

    def test_tiny_samples_fall_back_to_raw_threshold(self):
        # Raising drift_min_samples past the window size forces the
        # legacy branch: same drift fires, message cites no intervals.
        from repro.telemetry.watchdog import rule_outcome_drift
        sequence = ["masked"] * 30 + ["sdc"] * 20
        config = WatchdogConfig(drift_min_samples=50)
        alerts = rule_outcome_drift(self._snap(sequence), config)
        assert {a.experiment for a in alerts} == {"masked", "sdc"}
        assert all("Wilson" not in a.message for a in alerts)

    def test_small_drift_still_quiet_under_fallback(self):
        from repro.telemetry.watchdog import rule_outcome_drift
        sequence = (["sdc"] * 6 + ["masked"] * 24 +
                    ["sdc"] * 5 + ["masked"] * 15)  # 20% -> 25%
        config = WatchdogConfig(drift_min_samples=50)
        assert rule_outcome_drift(self._snap(sequence), config) == []
