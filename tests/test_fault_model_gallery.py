"""Fault-model gallery: transient, intermittent, permanent, multi-bit,
XOR, immediate and tick-timed faults exercised through real simulations
(Section III.A.4: "GemFI is not limited to specific fault models").

The target program reloads t0 = 3 every iteration, so a *transient*
upset hurts one iteration, an *intermittent* (occ:N) fault hurts the
iterations inside its span and then heals, and a *permanent*
(occ:permanent) fault keeps re-corrupting the register forever —
the three canonical behaviours the paper distinguishes.
"""

from conftest import run_asm

LOOP_ASM = """
main:
    ldi a0, 0
    fi_activate
    ldi t2, 16            # window instr 1-2
    clr t1                # 3
loop:
    ldi t0, 3             # 4-5 (reloaded every iteration)
    addq t1, t0, t1       # 6
    subq t2, 1, t2        # 7
    bgt t2, loop          # 8; iteration k occupies 4+5(k-1)..8+5(k-1)
    fi_activate
    mov t1, a0
    ldi v0, 5
    callsys
    ldi v0, 0
    ldi a0, 0
    callsys
"""
GOLDEN = "48"   # 16 iterations x 3


def run_loop(fault_line):
    sim, _ = run_asm(LOOP_ASM, faults_text=fault_line,
                     max_instructions=100_000)
    return sim


class TestTransient:
    def test_single_upset_hurts_one_iteration(self):
        # Flip bit 0 of t0 right after its reload: 3 -> 2 for exactly
        # one addq; the next reload heals it.
        sim = run_loop(
            "RegisterInjectedFault Inst:5 Flip:0 Threadid:0 "
            "system.cpu0 occ:1 int 1")
        assert len(sim.injector.records) == 1
        assert sim.console_text() == "47"


class TestIntermittent:
    def test_stuck_for_a_span_then_heals(self):
        # All0 re-applied for 10 consecutive instructions (covers the
        # addq of iterations 1 and 2); iteration 3 reloads after the
        # span and recovers: 48 - 2*3 = 42.
        sim = run_loop(
            "RegisterInjectedFault Inst:5 All0 Threadid:0 "
            "system.cpu0 occ:10 int 1")
        assert len(sim.injector.records) == 10
        assert sim.console_text() == "42"


class TestPermanent:
    def test_stuck_at_zero_forever(self):
        # The register is re-zeroed after every instruction, defeating
        # each iteration's reload: total 0.
        sim = run_loop(
            "RegisterInjectedFault Inst:5 All0 Threadid:0 "
            "system.cpu0 occ:permanent int 1")
        assert sim.console_text() == "0"
        assert len(sim.injector.records) > 50


class TestMultiBitAndMasks:
    def test_double_bit_flip(self):
        # 3 ^ 0b11 = 0 for one iteration: 48 - 3 = 45.
        sim = run_loop(
            "RegisterInjectedFault Inst:5 Flip:0,1 Threadid:0 "
            "system.cpu0 occ:1 int 1")
        assert sim.console_text() == "45"

    def test_xor_mask(self):
        # 3 ^ 6 = 5 for one iteration: 48 - 3 + 5 = 50.
        sim = run_loop(
            "RegisterInjectedFault Inst:5 Xor:0x6 Threadid:0 "
            "system.cpu0 occ:1 int 1")
        assert sim.console_text() == "50"

    def test_immediate_value(self):
        # t0 := 10 for one iteration: 48 - 3 + 10 = 55.
        sim = run_loop(
            "RegisterInjectedFault Inst:5 Imm:10 Threadid:0 "
            "system.cpu0 occ:1 int 1")
        assert sim.console_text() == "55"

    def test_all_ones(self):
        # t0 := -1 for one iteration: 48 - 3 - 1 = 44.
        sim = run_loop(
            "RegisterInjectedFault Inst:5 All1 Threadid:0 "
            "system.cpu0 occ:1 int 1")
        assert sim.console_text() == "44"


class TestTickTimed:
    def test_tick_mode_fires_and_corrupts(self):
        sim = run_loop(
            "RegisterInjectedFault Tick:10 All0 Threadid:0 "
            "system.cpu0 occ:1 int 1")
        assert sim.injector.records
        assert sim.console_text() != GOLDEN

    def test_tick_mode_beyond_window_never_fires(self):
        sim = run_loop(
            "RegisterInjectedFault Tick:999999 All0 Threadid:0 "
            "system.cpu0 occ:1 int 1")
        assert not sim.injector.records
        assert sim.console_text() == GOLDEN


class TestMultipleFaults:
    def test_two_transients_compose_exactly(self):
        # Iteration 1 adds 10 (Imm at 5), iteration 2 adds 2 (Imm at
        # 10, right after iteration 2's reload at 9-10):
        # 48 - 3 + 10 - 3 + 2 = 54.
        sim = run_asm(
            LOOP_ASM,
            faults_text=(
                "RegisterInjectedFault Inst:5 Imm:10 Threadid:0 "
                "system.cpu0 occ:1 int 1\n"
                "RegisterInjectedFault Inst:10 Imm:2 Threadid:0 "
                "system.cpu0 occ:1 int 1\n"),
            max_instructions=100_000)[0]
        assert len(sim.injector.records) == 2
        assert sim.console_text() == "54"
