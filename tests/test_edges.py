"""Edge cases across subsystem boundaries."""

import pytest

from repro.campaign import VddScaledGenerator, WindowProfile
from repro.compiler import CompileError, compile_source
from repro.core import FaultInjector
from repro.sim import SimConfig, Simulator, dumps_checkpoint, \
    restore_checkpoint

from conftest import run_asm, run_minic


class TestCompilerSpills:
    def test_deep_expression_uses_many_temporaries(self):
        # A long right-leaning expression chains temporaries.
        expr = " + ".join(f"({i} * 2 - 1)" for i in range(10))
        sim, _ = run_minic(f"""
def main():
    print_int({expr})
    exit(0)
""", with_injector=False)
        assert sim.console_text() == str(
            sum(i * 2 - 1 for i in range(10)))

    def test_call_inside_deep_expression_spills_and_restores(self):
        sim, _ = run_minic("""
def f(x) -> int:
    return x * 2

def main():
    a = 3
    b = 5
    print_int(a + b * f(a + b) + f(f(2)) * a - b)
    exit(0)
""", with_injector=False)
        a, b = 3, 5
        f = lambda x: x * 2
        assert sim.console_text() == str(a + b * f(a + b)
                                         + f(f(2)) * a - b)

    def test_too_deep_expression_reports_error(self):
        # A right-leaning chain of non-literal operands holds one
        # temporary per nesting level; exceeding the pool must be a
        # clean CompileError, not a crash.
        expr = "v"
        for _ in range(20):
            expr = f"(v + {expr})"
        with pytest.raises(CompileError, match="temporaries"):
            compile_source(f"def main():\n    v = 1\n    x = {expr}\n")

    def test_intrinsic_arity_errors(self):
        with pytest.raises(CompileError, match="argument"):
            compile_source("def main():\n    sqrt(1.0, 2.0)\n")
        with pytest.raises(CompileError, match="argument"):
            compile_source("def main():\n    print_int()\n")


class TestCheckpointWithThreads:
    MT = """
PARTIAL = iarray(2)

def worker(which):
    total = 0
    for i in range(100):
        total += i + which
    PARTIAL[which] = total
    return 0

def main():
    fi_read_init_all()
    fi_activate_inst(0)
    t1 = spawn(worker, 0)
    t2 = spawn(worker, 1)
    while join(t1) == 0 or join(t2) == 0:
        sched_yield()
    fi_activate_inst(0)
    print_int(PARTIAL[0] + PARTIAL[1])
    exit(0)
"""

    def test_checkpoint_before_spawn_restores_cleanly(self):
        injector = FaultInjector()
        sim = Simulator(SimConfig(quantum=100), injector=injector)
        sim.load(compile_source(self.MT), "mt")
        holder = {}
        sim.on_checkpoint = lambda s: holder.__setitem__(
            "blob", dumps_checkpoint(s))
        sim.run(until_checkpoint=True, max_instructions=2_000_000)
        result = sim.run(max_instructions=4_000_000)
        assert result.status == "completed"
        golden = sim.console_text()

        restored = restore_checkpoint(holder["blob"])
        restored.run(max_instructions=4_000_000)
        assert restored.console_text() == golden
        # Threads were re-spawned inside the restored run.
        assert sum(1 for p in restored.system.processes.values()
                   if p.is_thread) == 2


class TestSimulatorEdges:
    def test_run_result_hit_limit_property(self):
        sim, result = run_asm("main:\nloop: br loop\n",
                              max_instructions=1000)
        assert result.hit_limit

    def test_empty_simulator_completes_immediately(self):
        sim = Simulator(SimConfig())
        result = sim.run(max_instructions=100)
        assert result.status == "completed"
        assert result.instructions == 0

    def test_bad_cpu_model_rejected(self):
        with pytest.raises(ValueError, match="unknown cpu model"):
            SimConfig(cpu_model="pentium")

    def test_bad_quantum_rejected(self):
        with pytest.raises(ValueError, match="quantum"):
            SimConfig(quantum=0)

    def test_second_run_call_continues(self):
        asm = compile_source("""
def main():
    total = 0
    for i in range(500):
        total += i
    print_int(total)
    exit(0)
""")
        sim = Simulator(SimConfig())
        sim.load(asm, "t")
        first = sim.run(max_instructions=200)
        assert first.status == "limit"
        second = sim.run(max_instructions=2_000_000)
        assert second.status == "completed"
        assert sim.console_text() == str(sum(range(500)))


class TestVddGeneratorEdges:
    def test_above_nominal_clamps_to_base_rate(self):
        profile = WindowProfile(committed=1000, ticks=1000)
        generator = VddScaledGenerator(profile, seed=0, vdd=1.2,
                                       v_nominal=1.0, base_rate=0.1)
        assert generator.expected_upsets == pytest.approx(0.1)

    def test_invalid_vdd_rejected(self):
        profile = WindowProfile(committed=1000, ticks=1000)
        with pytest.raises(ValueError):
            VddScaledGenerator(profile, vdd=0.0)

    def test_faults_for_run_deterministic_per_seed(self):
        profile = WindowProfile(committed=1000, ticks=1000)
        runs_a = [len(VddScaledGenerator(profile, seed=3, vdd=0.8)
                      .faults_for_run()) for _ in range(5)]
        runs_b = [len(VddScaledGenerator(profile, seed=3, vdd=0.8)
                      .faults_for_run()) for _ in range(5)]
        assert runs_a[0] == runs_b[0]


class TestKernelThreadStub:
    def test_stub_lives_in_kernel_region(self):
        sim = Simulator(SimConfig())
        stub = sim.system.thread_exit_stub
        # The stub's first instruction decodes (it is real code).
        from repro.isa import decode
        word = sim.memory.read(stub, 4)
        assert decode(word).name == "bis"   # clr a0

    def test_direct_jump_to_stub_exits_cleanly(self):
        # KERNEL_BASE + 0x8000 is above 2**31, outside ldi range:
        # build it with a shift.
        asm = """
        main:
            ldi t0, 0xF0008
            sll t0, 12, t0
            jmp zero, (t0)
        """
        sim, _ = run_asm(asm)
        process = sim.process(0)
        assert process.state.value == "exited"
        assert process.exit_code == 0
