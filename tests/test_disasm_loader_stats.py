"""Disassembler, loader and statistics-module tests."""

from repro.isa import assemble, disassemble_word
from repro.isa import encoding as enc, instructions as ins
from repro.memory import MainMemory
from repro.sim import stats as sim_stats
from repro.system.loader import load_program, unload_process
from repro.system.process import data_base, stack_top, text_base

from conftest import run_minic


class TestDisassembler:
    def test_illegal_word_renders_gracefully(self):
        assert disassemble_word(0x07 << 26).startswith(".illegal")

    def test_branch_target_with_and_without_pc(self):
        word = enc.encode_branch(ins.OP_BEQ, 1, 3)
        assert disassemble_word(word) == "beq t0, .+3"
        assert disassemble_word(word, pc=0x1000) == "beq t0, 0x1010"

    def test_memory_operand_rendering(self):
        word = enc.encode_memory(ins.OP_LDQ, 1, 30, -8)
        assert disassemble_word(word) == "ldq t0, -8(sp)"

    def test_fp_rendering(self):
        word = enc.encode_fp_operate(ins.OP_FLTI, 1, 2, 0x0A0, 3)
        assert disassemble_word(word) == "addt f1, f2, f3"

    def test_literal_operand_rendering(self):
        word = enc.encode_operate_lit(ins.OP_INTA, 1, 42, 0x20, 3)
        assert disassemble_word(word) == "addq t0, 42, t2"  # r3 = t2

    def test_pal_and_fi_rendering(self):
        assert disassemble_word(
            enc.encode_palcode(ins.OP_PAL, ins.PAL_CALLSYS)) == "callsys"
        assert disassemble_word(
            enc.encode_palcode(ins.OP_FI, ins.FI_ACTIVATE)) == \
            "fi_activate_inst"

    def test_every_assembled_instruction_disassembles(self):
        img = assemble("""
        main:
            addq r1, r2, r3
            subl r1, 3, r3
            cmovlt r1, r2, r3
            ldbu t0, 1(sp)
            stb t0, 1(sp)
            ldl t0, 4(sp)
            stl t0, 4(sp)
            fbge f1, main
            cvtqt f2, f3
            itoft t0, f1
            ftoit f1, t0
            sextb t0, t1
            sextw t0, t1
            imb
            halt
        """)
        for index, word in enumerate(img.words()):
            text = disassemble_word(word, img.text_base + 4 * index)
            assert not text.startswith((".illegal", ".unknown")), text


class TestLoader:
    def test_layout_and_protection(self):
        memory = MainMemory()
        process = load_program(memory, "main:\n    nop\n    halt\n",
                               pid=0, name="p")
        assert process.entry == text_base(0)
        text_region = memory.region_of(text_base(0))
        assert text_region is not None and not text_region.writable
        assert memory.region_of(data_base(0)).writable
        assert memory.region_of(stack_top(0) - 8).writable

    def test_initial_context(self):
        memory = MainMemory()
        process = load_program(memory, "main: halt\n", pid=2, name="p")
        context = process.context
        assert context["pc"] == text_base(2)
        assert context["int"][30] == stack_top(2) - 64   # SP
        assert context["int"][29] == data_base(2)        # GP

    def test_symbols_exposed(self):
        memory = MainMemory()
        process = load_program(
            memory, "main: halt\n    .data\nfoo: .quad 7\n",
            pid=0, name="p")
        assert process.symbol("foo") == data_base(0)

    def test_unload_removes_all_regions(self):
        memory = MainMemory()
        process = load_program(memory, "main: halt\n", pid=0, name="p")
        unload_process(memory, process)
        assert memory.region_of(text_base(0)) is None
        assert memory.region_of(data_base(0)) is None
        assert memory.region_of(stack_top(0) - 8) is None

    def test_two_processes_disjoint_slots(self):
        memory = MainMemory()
        load_program(memory, "main: halt\n", pid=0, name="a")
        load_program(memory, "main: halt\n", pid=1, name="b")
        assert memory.region_of(text_base(0)).name == "p0.text"
        assert memory.region_of(text_base(1)).name == "p1.text"

    def test_data_contents_loaded(self):
        memory = MainMemory()
        process = load_program(
            memory, "main: halt\n    .data\nv: .quad -5, 9\n",
            pid=0, name="p")
        base = process.symbol("v")
        assert memory.read(base, 8) == (-5) & ((1 << 64) - 1)
        assert memory.read(base + 8, 8) == 9


class TestStatsModule:
    def test_collect_core_counters(self):
        sim, _ = run_minic("def main():\n    exit(0)\n")
        collected = sim_stats.collect(sim)
        assert collected["sim.instructions"] == sim.instructions
        assert collected["system.cpu0.committed"] == sim.core.committed
        assert collected["process.0.state"] == "exited"

    def test_o3_extra_counters_present(self):
        sim, _ = run_minic("def main():\n    exit(0)\n", model="o3")
        collected = sim_stats.collect(sim)
        assert "system.cpu0.bp.lookups" in collected
        assert "system.cpu0.squashed" in collected

    def test_atomic_reports_uniform_zero_predictor_counters(self):
        # Every CPU model emits the same counter set so dumps from
        # different models stay diffable; models without a predictor
        # report zeros rather than omitting the lines.
        sim, _ = run_minic("def main():\n    exit(0)\n")
        collected = sim_stats.collect(sim)
        assert collected["system.cpu0.bp.lookups"] == 0
        assert collected["system.cpu0.bp.mispredicts"] == 0
        assert collected["system.cpu0.squashed"] == 0

    def test_counter_names_uniform_across_models(self):
        baseline = None
        for model in ("atomic", "timing", "inorder", "o3"):
            sim, _ = run_minic("def main():\n    exit(0)\n", model=model)
            names = set(sim_stats.collect(sim))
            if baseline is None:
                baseline = names
            assert names == baseline, f"{model} diverges"

    def test_dump_parses_back(self):
        sim, _ = run_minic("def main():\n    exit(0)\n")
        for line in sim.stats_dump().strip().splitlines():
            name, value = line.split(" ", 1)
            assert name
            assert value

    def test_dumps_differ_between_different_programs(self):
        a, _ = run_minic("def main():\n    exit(0)\n")
        b, _ = run_minic("def main():\n    print_int(1)\n    exit(0)\n")
        assert a.stats_dump() != b.stats_dump()
