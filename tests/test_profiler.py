"""The simulator self-profiler (repro.telemetry.profiler).

Covers the three pillars of the observability issue:

* scoped-timer **attribution**: self-time accounting, >= 90% bucket
  coverage of wall time on every CPU model, folded flame-graph output,
  re-wrapping across mid-run CPU model switches;
* the **zero-overhead-when-disabled guarantee**, asserted structurally:
  an uninstalled profiler leaves every class method byte-identical and
  unprofiled golden stats dumps byte-identical (Section IV.A);
* **campaign roll-ups**: boot/window/injection/drain phase attribution
  of per-experiment wall time, host-time columns in ``gemfi status`` /
  ``gemfi report``, campaign KIPS, and the BENCH regression gate.
"""

from __future__ import annotations

import json
import os
import sys

import pytest

from repro.campaign.runner import _experiment_phases
from repro.core import FaultInjector
from repro.cpu.base import Core
from repro.isa.instructions import DecodeCache
from repro.sim import SimConfig, Simulator
from repro.telemetry import (
    Profiler,
    SamplingProfiler,
    campaign_metrics,
    read_status,
    render_status,
    sim_rates,
)
from repro.telemetry.campaign import percentile
from repro.telemetry.report import CampaignReport, add_result, \
    render_markdown

from conftest import MIXED_PROGRAM, run_asm
from repro.compiler import compile_source

MODELS = ("atomic", "timing", "inorder", "o3")


class FakeClock:
    """Deterministic clock: each read returns the next scripted time."""

    def __init__(self, *times):
        self.times = list(times)

    def __call__(self):
        return self.times.pop(0)


class TestSelfTimeAccounting:
    def test_nested_scopes_partition_elapsed(self):
        # outer: 0 -> 10, inner: 2 -> 5  =>  outer self 7, inner self 3.
        profiler = Profiler(clock=FakeClock(0.0, 2.0, 5.0, 10.0))
        outer = profiler._enter("outer")
        inner = profiler._enter("inner")
        profiler._exit(inner)
        profiler._exit(outer)
        assert profiler.buckets["outer"] == pytest.approx(7.0)
        assert profiler.buckets["inner"] == pytest.approx(3.0)
        assert profiler.total_seconds == pytest.approx(10.0)
        assert profiler.coverage() == pytest.approx(1.0)
        assert profiler.calls == {"outer": 1, "inner": 1}

    def test_scope_context_manager_and_paths(self):
        profiler = Profiler(clock=FakeClock(0.0, 1.0, 3.0, 4.0))
        with profiler.scope("a"):
            with profiler.scope("b"):
                pass
        assert profiler.paths[("a",)] == pytest.approx(2.0)
        assert profiler.paths[("a", "b")] == pytest.approx(2.0)
        folded = profiler.folded()
        assert "a 2000000\n" in folded
        assert "a;b 2000000\n" in folded

    def test_render_table_sorts_by_self_time(self):
        profiler = Profiler(clock=FakeClock(0.0, 2.0, 5.0, 10.0))
        outer = profiler._enter("outer")
        inner = profiler._enter("inner")
        profiler._exit(inner)
        profiler._exit(outer)
        table = profiler.render_table()
        lines = table.splitlines()
        assert lines[1].startswith("outer")
        assert lines[2].startswith("inner")
        assert lines[-1].startswith("attributed")
        assert "100.0%" in lines[-1]

    def test_sim_rates(self):
        rates = sim_rates(2000, 4000, 2.0)
        assert rates["kips"] == pytest.approx(1.0)
        assert rates["ticks_per_second"] == pytest.approx(2000.0)
        assert rates["host_seconds_per_instruction"] == \
            pytest.approx(0.001)
        assert sim_rates(10, 10, 0.0)["kips"] == 0.0


class TestInstalledProfiler:
    @pytest.mark.parametrize("model", MODELS)
    def test_coverage_at_least_90_percent(self, mixed_asm, model):
        sim = Simulator(SimConfig(cpu_model=model),
                        injector=FaultInjector())
        sim.load(mixed_asm, "test")
        profiler = Profiler().install(sim)
        result = sim.run(max_instructions=200_000)
        assert result.status == "completed"
        assert profiler.wall_seconds > 0
        # Acceptance bar: buckets sum to >= 90% of measured wall time.
        assert profiler.coverage() >= 0.90
        assert profiler.buckets["cpu.step"] > 0
        assert profiler.buckets["cpu.execute"] > 0
        profiler.uninstall()

    def test_o3_has_per_stage_buckets(self, mixed_asm):
        sim = Simulator(SimConfig(cpu_model="o3"),
                        injector=FaultInjector())
        sim.load(mixed_asm, "test")
        profiler = Profiler().install(sim)
        sim.run(max_instructions=200_000)
        for bucket in ("cpu.rename", "cpu.issue", "cpu.commit",
                       "cpu.fetch", "cpu.decode", "mem.l1i"):
            assert profiler.buckets.get(bucket, 0) > 0, bucket
        profiler.uninstall()

    def test_atomic_has_no_o3_stages(self, mixed_asm):
        sim = Simulator(SimConfig(), injector=FaultInjector())
        sim.load(mixed_asm, "test")
        profiler = Profiler().install(sim)
        sim.run(max_instructions=200_000)
        assert "cpu.rename" not in profiler.buckets
        assert "cpu.issue" not in profiler.buckets
        profiler.uninstall()

    def test_injector_hooks_attributed(self, mixed_asm):
        sim = Simulator(SimConfig(), injector=FaultInjector())
        sim.load(mixed_asm, "test")
        profiler = Profiler().install(sim)
        sim.run(max_instructions=200_000)
        assert profiler.calls.get("kernel.syscall", 0) > 0
        profiler.uninstall()

    def test_model_switch_rewraps_new_cpu(self, mixed_asm):
        sim = Simulator(SimConfig(cpu_model="o3"),
                        injector=FaultInjector())
        sim.load(mixed_asm, "test")
        profiler = Profiler().install(sim)
        sim.run(max_instructions=1_000)
        sim.switch_model("atomic")
        assert profiler.calls.get("cpu.switch") == 1
        # The freshly-built atomic model carries a timed step wrapper.
        assert sim.cpu.model_name == "atomic"
        assert getattr(sim.cpu.__dict__.get("step"), "__profiled__",
                       None) == "cpu.step"
        profiler.uninstall()
        assert "step" not in sim.cpu.__dict__

    def test_double_install_rejected(self, mixed_asm):
        sim = Simulator(SimConfig(), injector=FaultInjector())
        sim.load(mixed_asm, "test")
        profiler = Profiler().install(sim)
        with pytest.raises(RuntimeError):
            profiler.install(sim)
        profiler.uninstall()


class TestZeroOverheadWhenDisabled:
    def test_uninstall_restores_class_methods(self, mixed_asm):
        sim = Simulator(SimConfig(cpu_model="o3"),
                        injector=FaultInjector())
        sim.load(mixed_asm, "test")
        profiler = Profiler().install(sim)
        assert isinstance(sim.core.__dict__.get("serve_instruction"),
                          object)
        sim.run(max_instructions=10_000)
        profiler.uninstall()
        # Nothing profiler-related survives on any instance: the bound
        # methods resolve to the original class attributes again.
        for obj, attr in (
                (sim.core, "serve_instruction"), (sim.core, "execute"),
                (sim.cpu, "step"), (sim.memory, "fetch"),
                (sim.hierarchy, "read"), (sim.system, "syscall"),
                (sim, "run"), (sim, "switch_model")):
            assert attr not in obj.__dict__, (obj, attr)
        assert getattr(sim.core.serve_instruction, "__func__") is \
            Core.serve_instruction
        assert isinstance(sim.core.decode_cache, DecodeCache)
        assert sim.profiler is None

    def test_unprofiled_run_identical_console_and_stats(self, mixed_asm):
        """A profiled run must not change simulation results, and an
        unprofiled run must dump byte-identically whether or not the
        profiler code exists in the process (Section IV.A)."""
        sim_a, _ = run_asm(mixed_asm)
        sim_b, _ = run_asm(mixed_asm)
        assert sim_a.stats_dump() == sim_b.stats_dump()
        assert "host." not in sim_a.stats_dump()

        sim_c = Simulator(SimConfig(), injector=FaultInjector())
        sim_c.load(mixed_asm, "test")
        profiler = Profiler().install(sim_c)
        sim_c.run(max_instructions=2_000_000)
        assert sim_c.console_text() == sim_a.console_text()
        profiled_dump = sim_c.stats_dump()
        assert any(line.startswith("host.kips")
                   for line in profiled_dump.splitlines())
        assert any(line.startswith("host.profile.cpu.step")
                   for line in profiled_dump.splitlines())
        # Architectural counters are unaffected by profiling.
        stripped = [line for line in profiled_dump.splitlines()
                    if not line.startswith("host.")]
        assert stripped == sim_a.stats_dump().splitlines()
        profiler.uninstall()


class TestSamplingProfiler:
    def test_samples_classify_repro_frames(self):
        sampler = SamplingProfiler(hz=50)
        frame = sys._getframe()
        sampler.sample(frame)
        sampler.sample(frame)
        assert sampler.samples == 2
        attribution = sampler.attribution()
        assert attribution
        assert sum(attribution.values()) == pytest.approx(1.0)
        folded = sampler.folded()
        assert folded.endswith(" 2\n")
        assert "test_profiler" in folded

    def test_rejects_bad_frequency(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)

    def test_timer_round_trip_on_main_thread(self):
        sampler = SamplingProfiler(hz=1000)
        try:
            sampler.start()
        except ValueError:  # pragma: no cover - non-main-thread runner
            pytest.skip("no SIGPROF on this thread")
        deadline = 200_000
        total = 0.0
        for i in range(deadline):
            total += i * 0.5
        sampler.stop()
        assert total > 0
        # A busy loop at 1 kHz for ~10ms of CPU should collect *some*
        # samples on any host; zero just means a very fast machine, so
        # only the bookkeeping is asserted, not a minimum count.
        assert sampler.samples == sum(sampler.stacks.values())


class TestCampaignPhases:
    def test_phases_without_injection(self):
        phases = _experiment_phases(10.0, 10.5, 14.0,
                                    FaultInjector())
        assert phases["boot"] == pytest.approx(0.5)
        assert phases["window"] == pytest.approx(3.5)
        assert phases["injection"] == 0.0
        assert phases["drain"] == 0.0

    def test_phases_with_injection_sum_to_wall(self):
        injector = FaultInjector()
        injector.first_injection_host = 11.0
        injector.last_injection_host = 12.0
        phases = _experiment_phases(10.0, 10.5, 14.0, injector)
        assert phases["boot"] == pytest.approx(0.5)
        assert phases["window"] == pytest.approx(0.5)
        assert phases["injection"] == pytest.approx(1.0)
        assert phases["drain"] == pytest.approx(2.0)
        assert sum(phases.values()) == pytest.approx(4.0)

    def test_injector_stamps_and_reset(self):
        faults = ("RegisterInjectedFault Inst:5 Flip:2 Threadid:0 "
                  "system.cpu0 occ:1 int 3")
        sim, _ = run_asm(compile_source(MIXED_PROGRAM),
                         faults_text=faults,
                         max_instructions=200_000)
        injector = sim.injector
        if injector.records:
            assert injector.first_injection_host is not None
            assert injector.last_injection_host is not None
            assert injector.last_injection_host >= \
                injector.first_injection_host
        injector.reset()
        assert injector.first_injection_host is None
        assert injector.last_injection_host is None


class TestHostTimeRollups:
    def _share(self, tmp_path, walls=(0.5, 1.5, 1.0)):
        os.makedirs(tmp_path / "results")
        for index, wall in enumerate(walls):
            (tmp_path / "results" / f"exp_{index:04d}.json").write_text(
                json.dumps({
                    "outcome": "correct", "injected": True,
                    "wall_seconds": wall, "instructions": 10_000,
                    "phases": {"boot": 0.1, "window": 0.2,
                               "injection": 0.0,
                               "drain": wall - 0.3}}))
        return tmp_path

    def test_percentile_nearest_rank(self):
        assert percentile([], 0.5) is None
        assert percentile([3.0], 0.9) == 3.0
        values = [float(v) for v in range(1, 11)]
        assert percentile(values, 0.5) == 5.0
        assert percentile(values, 0.9) == 9.0

    def test_status_wall_rollup(self, tmp_path):
        self._share(tmp_path)
        status = read_status(str(tmp_path), clock=lambda: 0.0)
        assert status.completed == 3
        assert status.wall_total == pytest.approx(3.0)
        assert status.wall_mean == pytest.approx(1.0)
        assert status.wall_p50 == pytest.approx(1.0)
        assert status.wall_p90 == pytest.approx(1.5)
        assert status.slowest[0] == ("exp_0001", 1.5)
        # 30k instructions over 3 host-seconds = 10 KIPS.
        assert status.kips == pytest.approx(10.0)
        as_dict = status.as_dict()
        assert as_dict["wall_p90"] == pytest.approx(1.5)
        assert as_dict["kips"] == pytest.approx(10.0)

    def test_render_status_host_lines(self, tmp_path):
        self._share(tmp_path)
        text = render_status(read_status(str(tmp_path),
                                         clock=lambda: 0.0))
        assert "host time   :" in text
        assert "p90=1.500s" in text
        assert "sim rate    : 10.0 KIPS" in text
        assert "exp_0001=1.500s" in text

    def test_campaign_metrics_phase_and_kips(self):
        results = [
            {"outcome": "sdc", "wall_seconds": 2.0, "injected": True,
             "instructions": 4000,
             "phases": {"boot": 0.5, "window": 0.5, "injection": 0.0,
                        "drain": 1.0}},
            {"outcome": "correct", "wall_seconds": 2.0,
             "injected": False, "instructions": 4000,
             "phases": {"boot": 0.5, "window": 1.5, "injection": 0.0,
                        "drain": 0.0}},
        ]
        dump = campaign_metrics(results).dump()
        assert "campaign.host.kips 2.000000" in dump
        assert "campaign.host.phase_seconds.boot 1.000000" in dump
        assert "campaign.host.phase_seconds.drain 1.000000" in dump

    def test_report_host_section(self):
        report = CampaignReport(name="camp")
        for index, wall in enumerate((0.5, 1.5, 1.0)):
            add_result(report, {
                "outcome": "correct", "wall_seconds": wall,
                "instructions": 10_000, "time_fraction": 0.5,
                "phases": {"boot": 0.1, "window": 0.2,
                           "injection": 0.0, "drain": wall - 0.3},
            }, name=f"exp_{index:04d}")
        text = render_markdown(report)
        assert "## Host time" in text
        assert "### Slowest experiments" in text
        assert "exp_0001" in text
        assert "### Wall time by campaign phase" in text
        assert "| boot |" in text
        # Deterministic render: same aggregates, same bytes.
        assert text == render_markdown(report)

    def test_report_without_wall_data_unchanged(self):
        report = CampaignReport(name="camp")
        add_result(report, {"outcome": "sdc", "time_fraction": 0.1})
        assert "## Host time" not in render_markdown(report)


class TestBenchGate:
    def _bench(self, kips_by_case):
        return {"schema": "gemfi-bench-v1", "bench": "perf",
                "scale": "tiny", "repeats": 3,
                "cases": {key: {"kips_mean": value, "kips_stdev": 1.0}
                          for key, value in kips_by_case.items()},
                "summary": {}}

    @pytest.fixture()
    def check(self):
        sys.path.insert(0, os.path.join(os.path.dirname(__file__),
                                        os.pardir, "benchmarks",
                                        "perf"))
        try:
            from check_regression import check
            yield check
        finally:
            sys.path.pop(0)

    def test_gate_passes_within_tolerance(self, check):
        _, regressions = check(self._bench({"pi/atomic": 100.0}),
                               self._bench({"pi/atomic": 80.0}),
                               tolerance=0.25)
        assert regressions == []

    def test_gate_fails_beyond_tolerance(self, check):
        _, regressions = check(self._bench({"pi/atomic": 100.0}),
                               self._bench({"pi/atomic": 70.0}),
                               tolerance=0.25)
        assert len(regressions) == 1
        assert "pi/atomic" in regressions[0]

    def test_gate_ignores_one_sided_cases(self, check):
        lines, regressions = check(
            self._bench({"pi/atomic": 100.0, "pi/o3": 50.0}),
            self._bench({"pi/atomic": 100.0}), tolerance=0.25)
        assert regressions == []
        assert any("only in baseline" in line for line in lines)

    def test_gate_fails_with_no_shared_cases(self, check):
        _, regressions = check(self._bench({"a/b": 1.0}),
                               self._bench({"c/d": 1.0}),
                               tolerance=0.25)
        assert regressions


class TestProfileCli:
    def test_profile_json(self, tmp_path, capsys):
        from repro.cli import main
        program = tmp_path / "app.mc"
        program.write_text(MIXED_PROGRAM)
        folded_path = tmp_path / "out.folded"
        code = main(["profile", str(program), "--json",
                     "--folded", str(folded_path),
                     "--max-instructions", "50000"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["coverage"] >= 0.90
        assert payload["kips"] > 0
        assert payload["attribution"]["cpu.step"] > 0
        folded = folded_path.read_text()
        assert folded.startswith("loop")

    def test_profile_table_for_workload(self, capsys):
        from repro.cli import main
        code = main(["profile", "pi", "--cpu", "o3",
                     "--max-instructions", "5000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "host-time attribution" in out
        assert "cpu.rename" in out
        assert "attributed" in out
