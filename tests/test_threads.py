"""Multithreaded-application support (paper Section III: "GemFI supports
full system simulation mode as well as the execution of multithreaded
applications"; threads are identified by PCB address and targeted
individually via fi_activate_inst(id))."""

import pytest

from repro.compiler import CompileError, compile_source
from repro.core import FaultInjector
from repro.sim import SimConfig, Simulator

MT_PROGRAM = """
RESULTS = iarray(4)

def worker(which):
    fi_activate_inst(which + 1)
    total = 0
    for i in range(150):
        total += i * (which + 1)
    RESULTS[which] = total
    fi_activate_inst(which + 1)
    return 0

def main():
    t1 = spawn(worker, 0)
    t2 = spawn(worker, 1)
    while join(t1) == 0 or join(t2) == 0:
        sched_yield()
    print_int(RESULTS[0])
    print_char(32)
    print_int(RESULTS[1])
    print_char(10)
    exit(0)
"""

GOLDEN = "11175 22350\n"


def run_mt(faults_text="", quantum=120, model="atomic"):
    injector = FaultInjector.from_text(faults_text)
    sim = Simulator(SimConfig(cpu_model=model, quantum=quantum),
                    injector=injector)
    sim.load(compile_source(MT_PROGRAM), "mt")
    result = sim.run(max_instructions=5_000_000)
    return sim, result


class TestThreadBasics:
    def test_threads_compute_and_share_memory(self):
        sim, result = run_mt()
        assert result.status == "completed"
        assert sim.console_text() == GOLDEN

    @pytest.mark.parametrize("model", ["atomic", "o3"])
    def test_models_agree(self, model):
        sim, result = run_mt(model=model)
        assert sim.console_text() == GOLDEN

    def test_threads_have_distinct_pcbs(self):
        sim, _ = run_mt()
        pcbs = {p.pcb_addr for p in sim.system.processes.values()}
        assert len(pcbs) == 3

    def test_thread_stacks_are_reclaimed(self):
        sim, _ = run_mt()
        assert sim.memory.region_of(
            sim.system.processes[1].context["int"][30]) is None

    def test_thread_names_and_flags(self):
        sim, _ = run_mt()
        threads = [p for p in sim.system.processes.values()
                   if p.is_thread]
        assert len(threads) == 2
        assert all(t.slot_pid == 0 for t in threads)
        assert all(t.state.value == "exited" for t in threads)

    def test_spawn_requires_function_name(self):
        with pytest.raises(CompileError, match="function name"):
            compile_source("""
def main():
    x = 5
    spawn(x, 1)
""")

    def test_thread_return_exits_via_kernel_stub(self):
        # worker() ends with `return 0`; the RA points at the kernel's
        # exit stub, so the thread exits cleanly with code 0.
        sim, _ = run_mt()
        for process in sim.system.processes.values():
            if process.is_thread:
                assert process.exit_code == 0


class TestThreadTargetedFaults:
    def test_fi_windows_per_thread(self):
        sim, _ = run_mt()
        windows = sim.injector.windows
        assert {w["thread_id"] for w in windows} == {1, 2}
        counts = sorted(w["committed"] for w in windows)
        assert abs(counts[0] - counts[1]) <= 2  # same code, same length

    def test_fault_hits_only_targeted_thread(self):
        sim, _ = run_mt(
            "ExecutionStageInjectedFault Inst:400 All1 Threadid:1 "
            "system.cpu0 occ:1")
        import struct
        p0 = sim.system.processes[0]
        # Thread 2's result must be intact regardless of thread 1's fate.
        base = p0.symbol("g_RESULTS")
        values = struct.unpack("<2q", sim.memory.peek_bytes(base, 16))
        assert values[1] == 22350
        affected = values[0] != 11175 or any(
            p.state.value == "crashed"
            for p in sim.system.processes.values())
        assert affected

    def test_fault_on_second_thread(self):
        sim, _ = run_mt(
            "ExecutionStageInjectedFault Inst:400 All1 Threadid:2 "
            "system.cpu0 occ:1")
        import struct
        p0 = sim.system.processes[0]
        base = p0.symbol("g_RESULTS")
        values = struct.unpack("<2q", sim.memory.peek_bytes(base, 16))
        assert values[0] == 11175
        affected = values[1] != 22350 or any(
            p.state.value == "crashed"
            for p in sim.system.processes.values())
        assert affected

    def test_main_thread_untargeted_by_worker_ids(self):
        sim, _ = run_mt(
            "PCInjectedFault Inst:999999 Flip:1 Threadid:7 "
            "system.cpu0 occ:1")
        assert sim.console_text() == GOLDEN
        assert not sim.injector.records

    def test_crash_of_thread_leaves_others_running(self):
        sim, _ = run_mt(
            "PCInjectedFault Inst:300 Flip:35 Threadid:1 "
            "system.cpu0 occ:1")
        states = {p.name: p.state.value
                  for p in sim.system.processes.values()}
        assert states["mt.t1"] == "exited"
        # The main thread polls join() forever if t0 crashed before
        # finishing -- it is reaped by the watchdog in that case; both
        # are legitimate whole-run outcomes for this fault.
        assert states["mt.t0"] in ("crashed", "exited")
