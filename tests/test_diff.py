"""Differential campaign analytics tests (repro.analysis.diff).

The acceptance invariants the module guarantees:

* a campaign compared against itself is byte-deterministic and yields
  an ``unchanged`` verdict for every outcome class;
* an injected outcome shift larger than the margin flips the verdict
  to ``regressed`` (or ``improved``, depending on direction);
* the Newcombe interval always contains the observed delta and is
  clamped to [-1, 1];
* ``proportions_differ`` agrees with the watchdog's historical
  disjoint-Wilson criterion.
"""

import json

import pytest

from repro.analysis.diff import (
    CampaignDiff,
    CampaignSummary,
    compare_gauges,
    newcombe_interval,
    proportions_differ,
    render_diff_bars,
    render_diff_markdown,
    render_diff_svg,
    render_diff_text,
)
from repro.campaign.sampling import proportion_confidence_interval
from test_coverage import synthetic_results, write_share


def mutated_results(results, outcome="sdc"):
    """The same campaign with every outcome flipped to *outcome*."""
    shifted = [dict(entry) for entry in results]
    for entry in shifted:
        entry["outcome"] = outcome
    return shifted


class TestIntervalMath:
    def test_identical_proportions_not_significant(self):
        significant, _, _ = proportions_differ(10, 40, 10, 40)
        assert not significant

    def test_extreme_shift_significant(self):
        significant, (low_a, high_a), (low_b, high_b) = \
            proportions_differ(5, 20, 18, 20, confidence=0.95)
        assert significant
        assert low_b > high_a  # disjoint, b above a

    def test_matches_watchdog_overlap_criterion(self):
        # Historically the watchdog computed two Wilson intervals and
        # alerted when they were disjoint; the shared helper must give
        # the same answer on the same inputs.
        cases = [(5, 20, 18, 20), (10, 40, 12, 40), (0, 30, 6, 30),
                 (3, 10, 3, 10), (1, 50, 20, 50)]
        for sa, na, sb, nb in cases:
            low_a, high_a = proportion_confidence_interval(sa, na)
            low_b, high_b = proportion_confidence_interval(sb, nb)
            overlap = low_b <= high_a and low_a <= high_b
            significant, _, _ = proportions_differ(sa, na, sb, nb)
            assert significant == (not overlap)

    def test_newcombe_contains_delta_and_clamps(self):
        delta, low, high = newcombe_interval(5, 20, 20, 18, 20, 20)
        assert low <= delta <= high
        assert delta == pytest.approx(0.65)
        delta, low, high = newcombe_interval(0, 10, 10, 10, 10, 10)
        assert -1.0 <= low and high <= 1.0
        assert delta == pytest.approx(1.0)

    def test_zero_trials_neutral(self):
        delta, low, high = newcombe_interval(0, 0, 0, 0, 0, 0)
        assert delta == 0.0
        assert low <= 0.0 <= high


class TestCampaignSummary:
    def test_from_share_byte_deterministic(self, tmp_path):
        share = write_share(tmp_path / "share", synthetic_results(30),
                            committed=100)
        first = CampaignSummary.from_share(share)
        second = CampaignSummary.from_share(share)
        assert first.canonical_bytes() == second.canonical_bytes()
        assert first.digest() == second.digest()

    def test_payload_shape(self, tmp_path):
        share = write_share(tmp_path / "share", synthetic_results(40),
                            committed=100)
        payload = CampaignSummary.from_share(share).payload
        assert payload["schema"] == "gemfi.campaign_summary.v1"
        assert payload["experiments"] == 40
        assert set(payload["outcomes"]) == {"sdc", "crashed",
                                            "correct",
                                            "non_propagated"}
        total_rate = sum(o["rate"] for o in
                        payload["outcomes"].values())
        assert total_rate == pytest.approx(1.0, abs=1e-5)
        assert payload["coverage"]["heatmaps"]

    def test_from_payload_roundtrip(self, tmp_path):
        share = write_share(tmp_path / "share", synthetic_results(20),
                            committed=100)
        summary = CampaignSummary.from_share(share)
        rebuilt = CampaignSummary.from_payload(
            json.loads(summary.canonical_bytes()))
        assert rebuilt.canonical_bytes() == summary.canonical_bytes()

    def test_from_payload_accepts_result_list(self):
        results = synthetic_results(12)
        summary = CampaignSummary.from_payload(results)
        assert summary.payload["experiments"] == 12

    def test_from_payload_rejects_junk(self):
        with pytest.raises(ValueError):
            CampaignSummary.from_payload({"not": "a summary"})


class TestCampaignDiff:
    @pytest.fixture(scope="class")
    def shares(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("diff-shares")
        results = synthetic_results(40)
        base = write_share(root / "base", results, committed=100)
        same = write_share(root / "same", list(results), committed=100)
        shifted = write_share(root / "shifted",
                              mutated_results(results),
                              committed=100)
        return base, same, shifted

    def test_self_compare_unchanged_and_deterministic(self, shares):
        base, same, _ = shares
        diff = CampaignDiff(CampaignSummary.from_share(base),
                            CampaignSummary.from_share(same))
        assert diff.verdict == "unchanged"
        assert not diff.regressed
        for row in diff.payload["outcomes"].values():
            assert row["verdict"] == "unchanged"
        again = CampaignDiff(CampaignSummary.from_share(base),
                             CampaignSummary.from_share(same))
        assert diff.canonical_bytes() == again.canonical_bytes()

    def test_injected_shift_regresses_and_gates(self, shares):
        base, _, shifted = shares
        diff = CampaignDiff(CampaignSummary.from_share(base),
                            CampaignSummary.from_share(shifted))
        assert diff.verdict == "regressed"
        assert diff.regressed
        sdc = diff.payload["outcomes"]["sdc"]
        assert sdc["verdict"] == "regressed"
        assert sdc["significant"]
        assert sdc["delta"] == pytest.approx(0.75)
        assert sdc["ci_low"] > 0  # interval excludes zero
        # Fewer crashes is an improvement, not a regression.
        assert diff.payload["outcomes"]["crashed"]["verdict"] == \
            "improved"

    def test_direction_improved_overall(self, shares):
        base, _, shifted = shares
        # Swap operands: all-sdc -> mixed is an improvement.
        diff = CampaignDiff(CampaignSummary.from_share(shifted),
                            CampaignSummary.from_share(base))
        assert diff.payload["outcomes"]["sdc"]["verdict"] == "improved"

    def test_margin_suppresses_small_shifts(self, shares):
        base, _, shifted = shares
        diff = CampaignDiff(CampaignSummary.from_share(base),
                            CampaignSummary.from_share(shifted),
                            margin=0.9)
        assert diff.verdict == "unchanged"

    def test_parameter_validation(self, shares):
        base, same, _ = shares
        summary = CampaignSummary.from_share(base)
        other = CampaignSummary.from_share(same)
        with pytest.raises(ValueError):
            CampaignDiff(summary, other, confidence=1.5)
        with pytest.raises(ValueError):
            CampaignDiff(summary, other, margin=1.0)

    def test_heatmap_deltas_present(self, shares):
        base, _, shifted = shares
        payload = CampaignDiff(
            CampaignSummary.from_share(base),
            CampaignSummary.from_share(shifted)).payload
        assert "location" in payload["heatmaps"]
        cells = payload["heatmaps"]["location"]["cells"]
        assert cells
        for cell in cells:
            for row in cell["outcomes"].values():
                assert row["ci_low"] <= row["delta"] <= row["ci_high"]

    def test_gauges(self, shares):
        base, _, shifted = shares
        payload = CampaignDiff(
            CampaignSummary.from_share(base),
            CampaignSummary.from_share(shifted)).payload
        gauges = compare_gauges(payload)
        assert gauges["compare.verdict"] == 2
        assert gauges["compare.classes_regressed"] == 3
        assert gauges["compare.max_abs_delta"] == pytest.approx(0.75)
        assert gauges["compare.delta.sdc"] == pytest.approx(0.75)


class TestRendering:
    @pytest.fixture(scope="class")
    def payload(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("diff-render")
        results = synthetic_results(40)
        base = write_share(root / "base", results, committed=100)
        head = write_share(root / "head", mutated_results(results),
                           committed=100)
        return CampaignDiff(CampaignSummary.from_share(base),
                            CampaignSummary.from_share(head)).payload

    def test_text(self, payload):
        text = render_diff_text(payload)
        assert "verdict: regressed" in text
        assert "Outcome deltas" in text
        assert "Newcombe" in text

    def test_markdown(self, payload):
        text = render_diff_markdown(payload)
        assert text.startswith("# Campaign diff")
        assert "| outcome |" in text

    def test_svg(self, payload):
        svg = render_diff_svg(payload, "location")
        assert svg.startswith("<svg")
        assert "<title>" in svg  # interval tooltips

    def test_bars(self, payload):
        svg = render_diff_bars(payload)
        assert svg.startswith("<svg")
        assert "sdc" in svg
