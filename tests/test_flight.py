"""Flight recorder, propagation graphs, pipeview and campaign reports.

The directed acceptance tests live here: a known SEU into a named
register at a known time must be pinned by the divergence scanner to
that register within one digest interval, and the propagation graph
must connect the fault site to the classified outcome.
"""

import json
import os

import pytest

from repro.analysis import DefUseTracer, build_propagation_graph
from repro.cli import main
from repro.core import FaultInjector, parse_fault_file
from repro.sim import SimConfig, Simulator
from repro.telemetry import (
    ListSink,
    TraceBus,
    collect_pipeline,
    latency_histogram,
    load_share,
    read_status,
    render_from_events,
    render_html,
    render_markdown,
    render_report,
)
from repro.telemetry.events import events_from_jsonl, events_to_jsonl
from repro.telemetry.flight import (
    DivergenceScanner,
    FlightRecorder,
    hamming,
    regfile_checksum,
    register_label,
)

# A deterministic FI-windowed loop with hand-placed registers:
# t0 (int r1) accumulates across the whole window, t1 (r2) counts.
LOOP_ASM = """
main:
    ldi a0, 0
    fi_activate
    ldi t0, 0
    ldi t1, 0
loop:
    addq t0, t1, t0
    addq t1, 1, t1
    cmplt t1, 40, t2
    bne t2, loop
    fi_activate
    mov t0, a0
    ldi v0, 5
    callsys
    ldi v0, 0
    ldi a0, 0
    callsys
"""
# Window positions: 1-2 ldi t0, 3-4 ldi t1, 5 first addq t0,t1,t0.
ACC_FAULT = ("RegisterInjectedFault Inst:5 Flip:3 Threadid:0 "
             "system.cpu0 occ:1 int 1")
LOOP_PC_FAULT = ("PCInjectedFault Inst:5 Flip:30 Threadid:0 "
                 "system.cpu0 occ:1")

# Same loop, but every iteration stores the accumulator: a corrupted
# t0 becomes a wrong store *value* at the very next transaction.
STORE_ASM = """
main:
    ldi a0, 0
    fi_activate
    ldi t0, 0
    ldi t1, 0
    la t3, buf
loop:
    addq t0, t1, t0
    stq t0, 0(t3)
    addq t1, 1, t1
    cmplt t1, 20, t2
    bne t2, loop
    fi_activate
    mov t0, a0
    ldi v0, 5
    callsys
    ldi v0, 0
    ldi a0, 0
    callsys
    .data
buf: .space 8
"""
# Window positions: 1-2 ldi t0, 3-4 ldi t1, 5-6 la t3, 7 addq, 8 stq,
# 9 addq t1, 10 cmplt, 11 bne; the second iteration stores at 13.
STORE_FAULT = ("RegisterInjectedFault Inst:7 Flip:4 Threadid:0 "
               "system.cpu0 occ:1 int 1")
ADDR_FAULT = ("RegisterInjectedFault Inst:9 Flip:3 Threadid:0 "
              "system.cpu0 occ:1 int 4")


def run_traced(asm: str, faults_text: str, tracer,
               model: str = "atomic"):
    """Assemble-load-run with a commit-hook tracer installed; returns
    (sim, result)."""
    injector = FaultInjector.from_text(faults_text)
    if tracer is not None:
        injector.install_tracer(tracer)
    sim = Simulator(SimConfig(cpu_model=model), injector=injector)
    sim.load(asm, "flight")
    result = sim.run(max_instructions=200_000)
    return sim, result


def golden_log(asm: str, interval: int):
    recorder = FlightRecorder(interval=interval)
    _, result = run_traced(asm, "", recorder)
    assert result.status == "completed"
    return recorder.log


# -- primitives ---------------------------------------------------------------


class TestFlightPrimitives:
    def test_checksum_is_order_sensitive(self):
        assert regfile_checksum((1, 2)) != regfile_checksum((2, 1))
        assert regfile_checksum((5, 7)) == regfile_checksum((5, 7))

    def test_hamming_distance(self):
        assert hamming(0, 0) == 0
        assert hamming(0b1011, 0b0010) == 2
        assert hamming(0, (1 << 64) - 1) == 64

    def test_register_labels_cover_both_files(self):
        assert register_label(1) == "int t0"
        assert register_label(31) == "int zero"
        assert register_label(34) == "fp f2"

    def test_recorder_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            FlightRecorder(interval=0)

    def test_recorder_captures_digests_and_stores(self):
        log = golden_log(STORE_ASM, interval=8)
        assert log.interval == 8
        assert log.instructions > 0
        assert len(log.intervals) == log.instructions // 8
        # One store per loop iteration.
        assert len(log.stores) == 20
        # Interval samples count committed instructions in order.
        counts = [sample.count for sample in log.intervals]
        assert counts == sorted(counts)
        assert all(count % 8 == 0 for count in counts)
        store = log.stores[0]
        assert store.size == 8
        assert store.addr % 8 == 0
        assert log.as_dict()["stores"] == 20


# -- directed divergence tests ------------------------------------------------


class TestDirectedDivergence:
    INTERVAL = 4

    def scan(self, asm, fault, interval=None, model="atomic"):
        interval = interval or self.INTERVAL
        log = golden_log(asm, interval)
        scanner = DivergenceScanner(log)
        sim, result = run_traced(asm, fault, scanner, model=model)
        return sim, result, scanner

    def test_register_seu_pinned_to_register_and_interval(self):
        """Acceptance: a bit-3 flip of int t0 at window instruction 5 is
        identified as *that* register within one digest interval of the
        injection."""
        sim, _, scanner = self.scan(LOOP_ASM, ACC_FAULT)
        record = sim.injector.records[0]
        divergence = scanner.divergence
        assert divergence is not None
        assert divergence.kind == "register"
        assert divergence.location == "int t0"
        # +-1 interval resolution around the injection commit.
        assert abs(divergence.count - record.instruction_count) \
            <= self.INTERVAL
        assert abs(divergence.tick - record.tick) <= 2 * self.INTERVAL
        # Exactly the flipped bit.
        assert divergence.hamming_distance == 1
        assert (divergence.faulty_value ^ divergence.golden_value) \
            == (1 << 3)
        assert divergence.interval is not None
        assert "int t0" in divergence.describe()

    def test_store_corruption_found_at_exact_transaction(self):
        sim, _, scanner = self.scan(STORE_ASM, STORE_FAULT,
                                    interval=64)
        record = sim.injector.records[0]
        divergence = scanner.divergence
        assert divergence is not None
        assert divergence.kind == "memory"
        assert divergence.location.startswith("mem 0x")
        # The store right after the corrupted addq: exact resolution
        # (window coordinates; ``count`` starts one before the window).
        assert divergence.window == record.instruction_count + 1
        assert divergence.hamming_distance == 1

    def test_store_address_corruption_is_control_divergence(self):
        """Corrupting the *address* register redirects the next store:
        the store log mismatches on addr, a control divergence."""
        sim, _, scanner = self.scan(STORE_ASM, ADDR_FAULT, interval=64)
        record = sim.injector.records[0]
        divergence = scanner.divergence
        assert divergence is not None
        assert divergence.kind == "control"
        assert "(golden 0x" in divergence.location
        assert divergence.window == record.instruction_count + 4

    def test_immediate_crash_leaves_scanner_quiet(self):
        """A PC fault that traps before the next store or boundary is
        invisible to the scanner — the campaign runner reports the trap
        itself as the divergence (see TestRunnerFlight)."""
        sim, _, scanner = self.scan(LOOP_ASM, LOOP_PC_FAULT)
        assert sim.process(0).state.value == "crashed"
        assert scanner.divergence is None

    def test_fault_free_run_never_diverges(self):
        _, result, scanner = self.scan(LOOP_ASM, "")
        assert result.status == "completed"
        assert scanner.divergence is None

    def test_scanner_is_observation_only(self):
        """The faulty run behaves identically with and without the
        scanner riding it (console and stats dumps byte-identical)."""
        log = golden_log(LOOP_ASM, self.INTERVAL)
        scanner = DivergenceScanner(log)
        watched, _ = run_traced(LOOP_ASM, ACC_FAULT, scanner)
        plain, _ = run_traced(LOOP_ASM, ACC_FAULT, None)
        assert watched.console_text() == plain.console_text()
        assert watched.stats_dump() == plain.stats_dump()

    def test_divergence_round_trips_through_json(self):
        _, _, scanner = self.scan(LOOP_ASM, ACC_FAULT)
        payload = json.loads(json.dumps(scanner.divergence.as_dict()))
        assert payload["kind"] == "register"
        assert payload["location"] == "int t0"


# -- propagation graphs -------------------------------------------------------


@pytest.fixture(scope="module")
def loop_trace():
    tracer = DefUseTracer()
    _, result = run_traced(LOOP_ASM, "", tracer)
    assert result.status == "completed"
    return tracer


class TestPropagationGraph:
    def fault(self, text):
        return parse_fault_file(text)[0]

    def test_register_seu_chain_reaches_outcome(self, loop_trace):
        graph = build_propagation_graph(
            loop_trace, self.fault(ACC_FAULT), outcome="sdc")
        kinds = [node["kind"] for node in graph.nodes]
        assert kinds[0] == "fault"
        assert "int t0" in graph.nodes[0]["label"]
        assert kinds[-1] == "outcome"
        assert graph.nodes[-1]["label"] == "sdc"
        # The accumulator feeds itself every iteration, then the print
        # syscall observes it: fault -> defs -> output -> outcome.
        assert "def" in kinds
        assert "output" in kinds
        # Terminal is reachable: it has at least one incoming edge, and
        # every edge endpoint is a real node.
        terminal = graph.nodes[-1]["id"]
        assert any(dst == terminal for _, dst in graph.edges)
        ids = {node["id"] for node in graph.nodes}
        assert all(src in ids and dst in ids
                   for src, dst in graph.edges)

    def test_root_connects_to_terminal_even_for_pc_faults(self,
                                                          loop_trace):
        graph = build_propagation_graph(
            loop_trace, self.fault(LOOP_PC_FAULT), outcome="crashed",
            crash_reason="UnmappedAddress")
        assert [node["kind"] for node in graph.nodes] \
            == ["fault", "outcome"]
        assert graph.edges == [(0, 1)]
        assert "crashed" in graph.nodes[1]["label"]
        assert "UnmappedAddress" in graph.nodes[1]["label"]

    def test_max_nodes_truncates(self, loop_trace):
        graph = build_propagation_graph(
            loop_trace, self.fault(ACC_FAULT), outcome="sdc",
            max_nodes=5)
        assert graph.truncated
        assert graph.node_count() <= 6   # 5 + the terminal
        assert "truncated" in graph.describe()

    def test_graph_serialises_to_json(self, loop_trace):
        graph = build_propagation_graph(
            loop_trace, self.fault(ACC_FAULT), outcome="sdc")
        payload = json.loads(json.dumps(graph.as_dict()))
        assert payload["truncated"] is False
        assert payload["nodes"][0]["kind"] == "fault"
        assert all(len(edge) == 2 for edge in payload["edges"])

    def test_describe_shows_incoming_edges(self, loop_trace):
        graph = build_propagation_graph(
            loop_trace, self.fault(ACC_FAULT), outcome="sdc")
        text = graph.describe()
        assert "#0 [fault]" in text
        assert "<- #0" in text
        assert "[outcome] sdc" in text


# -- campaign runner integration ----------------------------------------------


@pytest.fixture(scope="module")
def flight_runner():
    from repro.campaign import CampaignRunner
    from repro.workloads import build
    runner = CampaignRunner(build("pi", "tiny"))
    runner.enable_flight(16)
    return runner


class TestRunnerFlight:
    PC_FAULT = ("PCInjectedFault Inst:5 Xor:0x7ff8 Threadid:0 "
                "system.cpu0 occ:1")

    def test_enable_flight_builds_and_caches_the_log(self,
                                                     flight_runner):
        log = flight_runner.flight_log()
        assert log.interval == 16
        assert log.instructions > 0
        assert len(log.intervals) >= 1
        assert flight_runner.flight_log() is log

    def test_experiment_attaches_divergence_and_propagation(
            self, flight_runner):
        fault = parse_fault_file(self.PC_FAULT)[0]
        sink = ListSink()
        flight_runner.bus = TraceBus(sink)
        try:
            result = flight_runner.run_experiment(fault)
        finally:
            flight_runner.bus = None
        assert result.injected
        assert result.divergence is not None
        assert result.divergence["kind"] in ("register", "memory",
                                             "control")
        assert result.divergence["latency"] >= 0
        graph = result.propagation
        assert graph is not None
        assert graph["nodes"][0]["kind"] == "fault"
        assert graph["nodes"][-1]["kind"] == "outcome"
        assert result.outcome.value in graph["nodes"][-1]["label"]
        # Both artifacts ride the result dict and the trace bus.
        payload = json.loads(json.dumps(result.as_dict()))
        assert payload["divergence"] == result.divergence
        assert payload["propagation"] == graph
        flight = sink.of_kind("flight_divergence")
        assert len(flight) == 1
        assert flight[0].data["divergence"] == result.divergence

    def test_uninjected_experiment_has_no_artifacts(self,
                                                    flight_runner):
        fault = parse_fault_file(
            "RegisterInjectedFault Inst:99999999 Flip:3 Threadid:0 "
            "system.cpu0 occ:1 int 1")[0]
        result = flight_runner.run_experiment(fault)
        assert not result.injected
        assert result.propagation is None

    def test_flight_workers_publish_artifacts_to_share(
            self, flight_runner, tmp_path):
        from repro.campaign import SharedDirCampaign
        share = str(tmp_path)
        campaign = SharedDirCampaign(share, "pi", "tiny")
        faults = [parse_fault_file(self.PC_FAULT),
                  parse_fault_file(self.PC_FAULT.replace(
                      "Inst:5", "Inst:7"))]
        campaign.publish(flight_runner, faults, seed=21, flight=16)
        assert campaign.published_flight() == 16
        completed = campaign.worker_loop("ws0", flight_runner)
        assert completed == 2
        with open(tmp_path / "results" / "exp_0000.json") as handle:
            entry = json.load(handle)
        assert entry["divergence"] is not None
        assert entry["propagation"]["nodes"][-1]["kind"] == "outcome"
        with open(tmp_path / "manifests" / "exp_0000.json") as handle:
            manifest = json.load(handle)
        assert manifest["divergence"] == entry["divergence"]
        # The report over this share agrees with read_status.
        report = load_share(share)
        assert report.experiments == 2
        assert report.outcomes == read_status(share).outcomes
        assert report.latencies


# -- pipeview -----------------------------------------------------------------


PIPE_ASM = """
main:
    ldi t0, 0
    ldi t1, 0
loop:
    addq t0, t1, t0
    addq t1, 1, t1
    cmplt t1, 5, t2
    bne t2, loop
    mov t0, a0
    ldi v0, 5
    callsys
    ldi v0, 0
    ldi a0, 0
    callsys
"""


def run_pipe_capture(pipe_trace: bool = True):
    sink = ListSink()
    bus = TraceBus(sink, pipe_trace=pipe_trace)
    sim = Simulator(SimConfig(cpu_model="o3"),
                    injector=FaultInjector(), bus=bus)
    sim.load(PIPE_ASM, "pipe")
    result = sim.run(max_instructions=100_000)
    assert result.status == "completed"
    return sim, sink


class TestPipeview:
    @pytest.fixture(scope="class")
    def capture(self):
        return run_pipe_capture()

    def test_o3_emits_pipe_events_with_pipe_trace(self, capture):
        _, sink = capture
        assert sink.of_kind("pipe_inst")
        # The loop exit mispredicts at least once.
        assert sink.of_kind("pipe_squash")

    def test_pipe_events_off_by_default(self):
        _, sink = run_pipe_capture(pipe_trace=False)
        assert not sink.of_kind("pipe_inst")
        assert not sink.of_kind("pipe_squash")
        # The aggregate squash event still reports (rare-event path).
        assert sink.of_kind("cpu_squash")

    def test_collect_folds_by_fetch_seq(self, capture):
        sim, sink = capture
        insts = collect_pipeline(sink.events)
        seqs = [inst.seq for inst in insts]
        assert seqs == sorted(seqs)
        committed = [inst for inst in insts if inst.committed]
        squashed = [inst for inst in insts if not inst.committed]
        assert len(committed) == len(sink.of_kind("pipe_inst"))
        assert squashed
        assert all(inst.squash_reason for inst in squashed)
        assert all(inst.fetch <= inst.end for inst in insts)

    def test_render_shows_lanes_and_squashes(self, capture):
        _, sink = capture
        text = render_from_events(sink.events)
        head = text.splitlines()[0]
        assert "instructions" in head and "squashed" in head
        assert "fdnc" in text          # a committed frontend->commit lane
        assert "x" in text
        assert "<- squashed (mispredict)" in text
        assert "addq t0, t1, t0" in text

    def test_render_is_pure_over_serialised_events(self, capture):
        """Acceptance: rendering consumes only captured events — a
        JSONL round trip renders byte-identically, no re-instrumentation
        at render time."""
        _, sink = capture
        text = render_from_events(sink.events)
        back = list(events_from_jsonl(events_to_jsonl(sink.events)))
        assert render_from_events(back) == text

    def test_commit_wins_over_squash_sweep(self):
        """The PC-fault path retires the head architecturally and then
        sweeps the window: the same seq sees pipe_inst + pipe_squash and
        must count as committed."""
        text = (
            '{"kind":"pipe_inst","tick":0,"seq":1,"pc":64,"fetch":1,'
            '"complete":3,"commit":4,"asm":"addq"}\n'
            '{"kind":"pipe_squash","tick":0,"seq":1,"pc":64,"fetch":1,'
            '"squash":4,"reason":"flush","asm":"addq"}\n'
            '{"kind":"pipe_squash","tick":0,"seq":2,"pc":68,"fetch":2,'
            '"squash":4,"reason":"flush","asm":"beq"}\n')
        insts = collect_pipeline(events_from_jsonl(text))
        assert insts[0].committed
        assert insts[0].squash is None
        assert not insts[1].committed
        assert insts[1].squash_reason == "flush"

    def test_empty_capture_renders_hint(self):
        assert "gemfi trace --pipe" in render_from_events([])

    def test_cli_trace_pipe_then_pipeview(self, tmp_path, capsys):
        program = tmp_path / "pipe.s"
        program.write_text(PIPE_ASM)
        trace = tmp_path / "pipe.jsonl"
        assert main(["trace", str(program), "--cpu", "o3", "--pipe",
                     "-o", str(trace)]) == 0
        capsys.readouterr()
        assert main(["pipeview", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "<- squashed" in out
        assert "fdnc" in out


# -- campaign reports ---------------------------------------------------------


REPORT_FAULTS = (
    "RegisterInjectedFault Inst:5 Flip:3 Threadid:0 system.cpu0 "
    "occ:1 int 1",
    "RegisterInjectedFault Inst:6 Flip:60 Threadid:0 system.cpu0 "
    "occ:1 fp 2",
    "PCInjectedFault Inst:7 Xor:0x7ff8 Threadid:0 system.cpu0 occ:1",
    "FetchStageInjectedFault Inst:5 Flip:14 Threadid:0 system.cpu0 "
    "occ:1",
    "ExecutionStageInjectedFault Inst:50 Flip:0 Threadid:0 "
    "system.cpu0 occ:1",
)
REPORT_OUTCOMES = ("crashed", "non_propagated", "strictly_correct",
                   "correct", "sdc")


def seed_share(tmp_path, experiments: int = 50) -> str:
    """A deterministic synthetic 50-experiment share directory."""
    results = tmp_path / "results"
    os.makedirs(results, exist_ok=True)
    for index in range(experiments):
        entry = {
            "outcome": REPORT_OUTCOMES[index % 5],
            "fault_file": REPORT_FAULTS[(index * 3) % 5] + "\n",
            "time_fraction": (index % 10) / 10 + 0.04,
            "wall_seconds": 1.0,
            "injected": True,
        }
        if index % 2 == 0:
            entry["divergence"] = {
                "kind": "register" if index % 4 == 0 else "control",
                "latency": index * 5,
            }
        with open(results / f"exp_{index:04d}.json", "w",
                  encoding="utf-8") as handle:
            json.dump(entry, handle)
    # A mid-write junk file must be skipped, exactly like read_status.
    (results / "exp_9999.json").write_text("{not json")
    (results / "notes.txt").write_text("ignore me")
    return str(tmp_path)


class TestCampaignReport:
    def test_report_totals_match_read_status(self, tmp_path):
        share = seed_share(tmp_path)
        report = load_share(share)
        status = read_status(share)
        assert report.experiments == status.completed == 50
        assert report.outcomes == status.outcomes
        assert sum(report.outcomes.values()) == 50

    def test_rendering_is_byte_deterministic(self, tmp_path):
        share = seed_share(tmp_path)
        first_md = render_markdown(load_share(share))
        second_md = render_markdown(load_share(share))
        assert first_md == second_md
        assert render_html(load_share(share)) \
            == render_html(load_share(share))

    def test_markdown_sections_and_counts(self, tmp_path):
        text = render_markdown(load_share(seed_share(tmp_path)))
        assert "# Campaign report:" in text
        assert "50 completed experiments." in text
        assert "## Outcome totals" in text
        assert "## Outcomes by fault location" in text
        assert "## Outcomes by injection timing" in text
        assert "## Divergence latency" in text
        assert "| TOTAL | 50 | 100.0% |" in text
        assert "| sdc | 10 | 20.0% |" in text
        # Every fault location row present.
        for label in ("int regfile", "fp regfile", "pc", "fetch",
                      "execute"):
            assert f"| {label} |" in text

    def test_html_rendering(self, tmp_path):
        text = render_html(load_share(seed_share(tmp_path)))
        assert text.startswith("<!DOCTYPE html>")
        assert "<h2>Outcome totals</h2>" in text
        assert "<td>TOTAL</td><td>50</td>" in text
        assert "Divergence latency" in text

    def test_unknown_format_rejected(self, tmp_path):
        report = load_share(seed_share(tmp_path))
        with pytest.raises(ValueError):
            render_report(report, fmt="pdf")

    def test_latency_histogram_power_of_two_buckets(self):
        rows = latency_histogram([0, 1, 2, 3, 5, 9])
        assert rows == [("0", 1), ("1-1", 1), ("2-3", 2),
                        ("4-7", 1), ("8-15", 1)]
        assert latency_histogram([]) == []

    def test_missing_results_dir_is_empty_report(self, tmp_path):
        report = load_share(str(tmp_path))
        assert report.experiments == 0
        assert "0 completed experiments." \
            in render_markdown(report)

    def test_cli_report_stdout_and_file(self, tmp_path, capsys):
        share = seed_share(tmp_path / "campaign_a")
        assert main(["report", share]) == 0
        out = capsys.readouterr().out
        assert "# Campaign report: campaign_a" in out
        output = tmp_path / "report.html"
        assert main(["report", share, "--format", "html",
                     "-o", str(output)]) == 0
        assert output.read_text().startswith("<!DOCTYPE html>")
        # Two CLI renders of the same share are byte-identical.
        again = tmp_path / "report2.html"
        assert main(["report", share, "--format", "html",
                     "-o", str(again)]) == 0
        assert output.read_bytes() == again.read_bytes()

    def test_cli_campaign_share_dir_to_report(self, tmp_path, capsys):
        """The CI smoke pipeline: gemfi campaign --share-dir runs a
        NoW campaign with local workers, gemfi report renders it."""
        share = tmp_path / "share"
        assert main(["campaign", "-w", "pi", "--scale", "tiny",
                     "-n", "2", "--seed", "3", "--flight", "32",
                     "--share-dir", str(share), "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "2 results" in out
        status = read_status(str(share))
        assert status.completed == 2
        report_path = tmp_path / "smoke.html"
        assert main(["report", str(share), "--format", "html",
                     "-o", str(report_path)]) == 0
        html = report_path.read_text()
        assert "<td>TOTAL</td><td>2</td>" in html
        # The published flight interval reached the worker processes:
        # every result record carries the divergence field (null when
        # the run never left the golden path).
        results = sorted((share / "results").glob("exp_*.json"))
        assert len(results) == 2
        for path in results:
            assert "divergence" in json.loads(path.read_text())
        assert sorted((share / "manifests").glob("exp_*.json"))
