"""OpenMetrics exposition tests: rendering, labels, parsing."""

import pytest

from repro.telemetry.export import (
    OPENMETRICS_CONTENT_TYPE,
    escape_label_value,
    labelled,
    parse_metric_name,
    parse_openmetrics,
    render_openmetrics,
    sanitize_metric_name,
)
from repro.telemetry.metrics import MetricsRegistry


class TestNameSanitization:
    @pytest.mark.parametrize("raw,clean", [
        ("http.requests", "http_requests"),
        ("queue.tenant-active", "queue_tenant_active"),
        ("already_fine:colons_ok", "already_fine:colons_ok"),
        ("9starts_with_digit", "_9starts_with_digit"),
        ("", "_"),
        ("weird chars!", "weird_chars_"),
    ])
    def test_sanitize(self, raw, clean):
        assert sanitize_metric_name(raw) == clean


class TestLabels:
    def test_labelled_sorts_keys_deterministically(self):
        a = labelled("m", zeta="1", alpha="2")
        b = labelled("m", alpha="2", zeta="1")
        assert a == b == 'm{alpha="2",zeta="1"}'

    def test_labelled_round_trips_through_parse(self):
        key = labelled("http.requests", method="GET",
                       route="/v1/jobs/{id}", code="2xx")
        base, labels = parse_metric_name(key)
        assert base == "http.requests"
        assert labels == {"method": "GET", "route": "/v1/jobs/{id}",
                          "code": "2xx"}

    def test_escaping_round_trips(self):
        value = 'a"b\\c\nd'
        key = labelled("m", tricky=value)
        _, labels = parse_metric_name(key)
        assert labels == {"tricky": value}
        escaped = escape_label_value(value)
        assert '\\"' in escaped and "\\n" in escaped \
            and "\\\\" in escaped

    def test_unlabelled_name_parses_as_itself(self):
        assert parse_metric_name("plain.name") == ("plain.name", {})


class TestRenderOpenMetrics:
    def test_counter_family_strips_total_sample_keeps_it(self):
        registry = MetricsRegistry()
        registry.counter(labelled("hits", kind="a")).inc(3)
        text = render_openmetrics(registry)
        assert "# TYPE hits counter\n" in text
        assert 'hits_total{kind="a"} 3\n' in text
        assert text.endswith("# EOF\n")

    def test_gauge_bools_and_floats(self):
        registry = MetricsRegistry()
        registry.set("flag", True)
        registry.set("depth", 4)
        registry.set("ratio", 0.25)
        registry.set("notes", "not a number")  # skipped, not an error
        text = render_openmetrics(registry)
        assert "flag 1\n" in text
        assert "depth 4\n" in text
        assert "ratio 0.25\n" in text
        assert "notes" not in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", (0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.record(value)
        text = render_openmetrics(registry)
        assert 'lat_bucket{le="0.1"} 1\n' in text
        assert 'lat_bucket{le="1"} 3\n' in text
        assert 'lat_bucket{le="+Inf"} 4\n' in text
        assert "lat_count 4\n" in text
        assert "lat_sum 6.05\n" in text

    def test_histogram_sum_slot_not_in_gem5_dump(self):
        registry = MetricsRegistry()
        registry.histogram("lat", (1.0,)).record(0.5)
        dump = registry.dump()
        assert "total" not in dump  # byte-stable gem5-style dump

    def test_distribution_renders_as_summary(self):
        registry = MetricsRegistry()
        dist = registry.distribution("d")
        dist.record(2.0)
        dist.record(4.0)
        text = render_openmetrics(registry)
        assert "# TYPE d summary\n" in text
        assert "d_count 2\n" in text
        assert "d_sum 6\n" in text

    def test_help_text_is_emitted_and_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        text = render_openmetrics(
            registry, help_texts={"c": 'line\none "two"'})
        assert "# HELP c line\\none \"two\"\n" in text

    def test_mixed_types_in_one_family_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter(labelled("m", k="a")).inc()
        registry.set(labelled("m", k="b"), 1)
        with pytest.raises(ValueError):
            render_openmetrics(registry)

    def test_output_is_deterministic(self):
        def build():
            registry = MetricsRegistry()
            registry.counter(labelled("z.last", t="b")).inc(2)
            registry.counter(labelled("z.last", t="a")).inc(1)
            registry.set("a.first", 7)
            return render_openmetrics(registry)

        assert build() == build()

    def test_content_type_names_openmetrics(self):
        assert "openmetrics-text" in OPENMETRICS_CONTENT_TYPE


class TestParseOpenMetrics:
    def test_valid_exposition_parses(self):
        registry = MetricsRegistry()
        registry.counter(labelled("http.requests", code="2xx")).inc(9)
        registry.histogram("lat", (0.5,)).record(0.2)
        registry.set("depth", 3)
        families = parse_openmetrics(render_openmetrics(registry))
        assert families["http_requests"]["type"] == "counter"
        assert families["lat"]["type"] == "histogram"
        assert families["depth"]["type"] == "gauge"

    def test_missing_eof_is_rejected(self):
        with pytest.raises(ValueError, match="EOF"):
            parse_openmetrics("# TYPE c counter\nc_total 1\n")

    def test_content_after_eof_is_rejected(self):
        with pytest.raises(ValueError):
            parse_openmetrics("# EOF\nc_total 1\n")

    def test_non_cumulative_buckets_are_rejected(self):
        text = ("# TYPE lat histogram\n"
                'lat_bucket{le="0.1"} 5\n'
                'lat_bucket{le="1"} 3\n'
                'lat_bucket{le="+Inf"} 5\n'
                "lat_count 5\n"
                "lat_sum 1\n"
                "# EOF\n")
        with pytest.raises(ValueError, match="cumulative"):
            parse_openmetrics(text)

    def test_histogram_without_inf_bucket_is_rejected(self):
        text = ("# TYPE lat histogram\n"
                'lat_bucket{le="0.1"} 1\n'
                "lat_count 1\n"
                "lat_sum 0.05\n"
                "# EOF\n")
        with pytest.raises(ValueError, match=r"\+Inf"):
            parse_openmetrics(text)

    def test_non_numeric_sample_is_rejected(self):
        with pytest.raises(ValueError):
            parse_openmetrics("# TYPE g gauge\ng banana\n# EOF\n")


class TestRegistryPrune:
    def test_prune_drops_name_dotted_and_labelled_series(self):
        registry = MetricsRegistry()
        registry.set("queue.depth", 1)
        registry.set("queue.depth.extra", 2)
        registry.set(labelled("queue.depth", t="a"), 3)
        registry.set("queue.depths", 4)  # different metric, kept
        dropped = registry.prune("queue.depth")
        assert dropped == 3
        remaining = registry.stats()
        assert "queue.depths" in remaining
        assert all(not key.startswith("queue.depth{")
                   and key != "queue.depth" for key in remaining)
