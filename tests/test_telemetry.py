"""repro.telemetry tests: metrics registry, trace bus, campaign
observability and the CLI surfaces built on them."""

import json
import os
import threading
import time

import pytest

from repro.cli import main
from repro.compiler import compile_source
from repro.core import FaultInjector, parse_fault_file
from repro.sim import SimConfig, Simulator
from repro.sim.checkpoint import dumps_checkpoint, restore_checkpoint
from repro.telemetry import (
    EVENT_KINDS,
    JsonlFileSink,
    ListSink,
    MetricsRegistry,
    RingBufferSink,
    TraceBus,
    TraceEvent,
    campaign_metrics,
    diff_stats,
    events_from_jsonl,
    events_to_jsonl,
    follow_jsonl,
    parse_stats,
    read_heartbeats,
    read_status,
    render_status,
    run_manifest,
    write_heartbeat,
)

from conftest import run_minic

WINDOWED = """
def main():
    fi_read_init_all()
    fi_activate_inst(0)
    s = 0
    for i in range(30):
        s += i
    fi_activate_inst(0)
    print_int(s)
    exit(0)
"""

REG_FAULT = ("RegisterInjectedFault Inst:5 Flip:3 Threadid:0 "
             "system.cpu0 occ:1 int 1")
PC_FAULT = "PCInjectedFault Inst:5 Xor:0x7ff8 Threadid:0 system.cpu0 occ:1"


def run_with_bus(source: str, faults_text: str = "",
                 model: str = "atomic", sink=None):
    """Compile-load-run with a trace bus attached; returns
    (sim, result, sink)."""
    sink = sink if sink is not None else ListSink()
    bus = TraceBus(sink)
    injector = FaultInjector.from_text(faults_text)
    sim = Simulator(SimConfig(cpu_model=model), injector=injector,
                    bus=bus)
    sim.load(compile_source(source), "test")
    result = sim.run(max_instructions=2_000_000)
    return sim, result, sink


# -- metrics registry ---------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_get_or_create(self):
        reg = MetricsRegistry()
        reg.counter("a.b").inc()
        reg.counter("a.b").inc(4)
        assert reg.get("a.b") == 5

    def test_distribution_summary_lines(self):
        reg = MetricsRegistry()
        dist = reg.distribution("lat")
        for sample in (1, 2, 3, 4):
            dist.record(sample)
        flat = reg.as_flat_dict()
        assert flat["lat.count"] == 4
        assert flat["lat.min"] == 1.0
        assert flat["lat.max"] == 4.0
        assert flat["lat.mean"] == 2.5
        assert flat["lat.stdev"] == pytest.approx(1.2909944)

    def test_histogram_buckets_and_overflow(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", bounds=(10.0, 100.0))
        for sample in (5, 50, 500):
            hist.record(sample)
        flat = reg.as_flat_dict()
        assert flat["h.samples"] == 3
        assert flat["h.le_10.000000"] == 1
        assert flat["h.le_100.000000"] == 1
        assert flat["h.overflow"] == 1

    def test_formula_reads_other_stats(self):
        reg = MetricsRegistry()
        reg.counter("instructions").inc(30)
        reg.counter("ticks").inc(10)
        reg.formula("ipc", lambda r: r.get("instructions")
                    / r.get("ticks"))
        assert reg.get("ipc") == 3.0
        assert "ipc 3.000000" in reg.dump()

    def test_get_resolves_expanded_subline(self):
        reg = MetricsRegistry()
        reg.distribution("d").record(7)
        assert reg.get("d.mean") == 7.0

    def test_dump_sorted_and_insertion_order_independent(self):
        a = MetricsRegistry()
        a.counter("z").inc()
        a.counter("a").inc()
        b = MetricsRegistry()
        b.counter("a").inc()
        b.counter("z").inc()
        assert a.dump() == b.dump()
        assert a.dump().splitlines() == sorted(a.dump().splitlines())

    def test_scope_prefixes(self):
        reg = MetricsRegistry()
        cpu = reg.scope("system.cpu0")
        cpu.scope("bp").counter("lookups").inc()
        assert reg.get("system.cpu0.bp.lookups") == 1


# -- trace events and sinks ---------------------------------------------------


class TestTraceBus:
    def test_jsonl_round_trip(self):
        events = [TraceEvent("fault_injected", 7, {"pc": 64, "b": "x"}),
                  TraceEvent("trap", 9, {"reason": "bad"})]
        text = events_to_jsonl(events)
        back = list(events_from_jsonl(text))
        assert back == events

    def test_json_is_deterministic(self):
        one = TraceEvent("trap", 1, {"b": 2, "a": 1}).to_json()
        two = TraceEvent("trap", 1, {"a": 1, "b": 2}).to_json()
        assert one == two

    def test_emit_validates_kind(self):
        bus = TraceBus(ListSink())
        with pytest.raises(ValueError):
            bus.emit("no_such_kind")

    def test_emit_uses_clock_when_tick_missing(self):
        sink = ListSink()
        bus = TraceBus(sink, clock=lambda: 42)
        bus.emit("trap", reason="x")
        assert sink.events[0].tick == 42

    def test_fan_out_to_multiple_sinks(self):
        a, b = ListSink(), ListSink()
        bus = TraceBus(a, b)
        bus.emit("halt", tick=1)
        assert len(a.events) == len(b.events) == 1

    def test_ring_buffer_keeps_last_n(self):
        ring = RingBufferSink(capacity=3)
        bus = TraceBus(ring)
        for tick in range(10):
            bus.emit("syscall", tick=tick)
        assert [e.tick for e in ring.events] == [7, 8, 9]
        assert ring.dropped == 7

    def test_jsonl_file_sink_writes_parseable_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlFileSink(str(path)) as sink:
            bus = TraceBus(sink)
            bus.emit("fault_armed", tick=0, fault="f")
            bus.emit("halt", tick=5)
        back = list(events_from_jsonl(path.read_text()))
        assert [e.kind for e in back] == ["fault_armed", "halt"]
        assert sink.count == 2


# -- simulator lifecycle instrumentation --------------------------------------


class TestSimulatorEvents:
    def test_fault_lifecycle_events(self):
        sim, result, sink = run_with_bus(WINDOWED, REG_FAULT)
        kinds = [e.kind for e in sink.events]
        assert "fi_window_open" in kinds
        assert "fi_window_close" in kinds
        assert "fault_injected" in kinds
        assert ("fault_propagated" in kinds) or ("fault_masked" in kinds)
        assert kinds[-1] == "process_exit"
        injected = sink.of_kind("fault_injected")[0]
        assert injected.data["fault"].startswith("RegisterInjectedFault")
        assert "pc" in injected.data

    def test_every_emitted_kind_is_in_vocabulary(self):
        _, _, sink = run_with_bus(WINDOWED, REG_FAULT)
        assert {e.kind for e in sink.events} <= EVENT_KINDS

    def test_syscall_events_present(self):
        _, _, sink = run_with_bus(WINDOWED)
        assert sink.of_kind("syscall")

    def test_ring_buffer_postmortem_after_crash(self):
        ring = RingBufferSink(capacity=4)
        sim, result, _ = run_with_bus(WINDOWED, PC_FAULT, sink=ring)
        process = sim.process(0)
        assert process.crash_reason is not None
        # The last events before the crash survive in the ring.
        kinds = [e.kind for e in ring.events]
        assert "trap" in kinds
        assert len(ring.events) <= 4

    def test_disabled_bus_dump_byte_identical(self):
        """Golden acceptance: attaching telemetry machinery (bus object,
        disabled) must not perturb the stats dump at all."""
        plain, _ = run_minic(WINDOWED)
        bus = TraceBus(ListSink())
        bus.enabled = False
        injector = FaultInjector()
        sim = Simulator(SimConfig(), injector=injector, bus=bus)
        sim.load(compile_source(WINDOWED), "test")
        sim.run(max_instructions=2_000_000)
        assert sim.stats_dump() == plain.stats_dump()

    def test_enabled_bus_dump_byte_identical_too(self):
        """Event emission is observation only — the dump of a traced run
        matches an untraced one byte for byte."""
        plain, _ = run_minic(WINDOWED)
        traced, _, _ = run_with_bus(WINDOWED)
        assert traced.stats_dump() == plain.stats_dump()

    def test_fi_stats_present_only_after_injection(self):
        faulty, _ = run_minic(WINDOWED, faults_text=REG_FAULT)
        clean, _ = run_minic(WINDOWED)
        assert "fi.injections.total" in faulty.stats_dump()
        assert "fi.injections.regfile" in faulty.stats_dump()
        assert "fi." not in clean.stats_dump()


# -- stats diff ---------------------------------------------------------------


class TestStatsDiff:
    def test_identical_dumps_zero_differences(self):
        a, _ = run_minic(WINDOWED)
        b, _ = run_minic(WINDOWED)
        assert diff_stats(a.stats_dump(), b.stats_dump()) == []

    def test_reports_changed_added_removed(self):
        a = "alpha 1\nbeta 2\n"
        b = "beta 3\ngamma 4\n"
        diffs = diff_stats(a, b)
        assert diffs == ["- alpha 1", "~ beta 2 -> 3", "+ gamma 4"]

    def test_parse_stats_round_trip(self):
        text = "a.b 1\nc.d 2.500000\n"
        assert parse_stats(text) == {"a.b": "1", "c.d": "2.500000"}


# -- campaign observability ---------------------------------------------------


class TestCampaignObservability:
    def test_run_manifest_contents(self):
        manifest = run_manifest(
            experiment="exp_0001", workload="dct", scale="tiny",
            fault_text=REG_FAULT + "\n", seed=3, worker="ws0",
            started=100.0, wall_seconds=1.5, outcome="masked",
            git_rev="abc123")
        assert manifest["experiment"] == "exp_0001"
        assert manifest["seed"] == 3
        assert manifest["fault_file"].startswith("RegisterInjectedFault")
        assert manifest["git"] == "abc123"

    def test_heartbeat_write_and_read(self, tmp_path):
        share = str(tmp_path)
        write_heartbeat(share, "ws0", 3, clock=lambda: 1000.0)
        beats = read_heartbeats(share)
        assert beats["ws0"]["completed"] == 3
        assert beats["ws0"]["time"] == 1000.0

    def _make_share(self, tmp_path, now=1000.0):
        """Synthetic share: 1 todo, 2 claimed (1 stale), 2 results."""
        for sub in ("todo", "claimed", "results", "claims"):
            os.makedirs(tmp_path / sub)
        (tmp_path / "todo" / "exp_0004.txt").write_text("x")
        for index, claim_time in ((0, now - 50), (1, now - 40),
                                  (2, now - 2000), (3, now - 30)):
            name = f"exp_{index:04d}.txt"
            (tmp_path / "claims" / f"{name}.claim").write_text(
                json.dumps({"worker": "ws0", "pid": 1,
                            "time": claim_time}))
            if index in (0, 1):
                (tmp_path / "results" / f"exp_{index:04d}.json"
                 ).write_text(json.dumps(
                    {"outcome": "masked" if index == 0 else "sdc",
                     "wall_seconds": 1.0, "injected": True}))
            else:
                (tmp_path / "claimed" / f"ws0_{name}").write_text("x")
        write_heartbeat(str(tmp_path), "ws0", 2, clock=lambda: now - 5)
        write_heartbeat(str(tmp_path), "ws1", 0,
                        clock=lambda: now - 500)

    def test_read_status_counts(self, tmp_path):
        now = 1000.0
        self._make_share(tmp_path, now)
        status = read_status(str(tmp_path), stale_claim_seconds=600,
                             heartbeat_timeout=120,
                             clock=lambda: now)
        assert status.todo == 1
        assert status.claimed == 2
        assert status.completed == 2
        assert status.stale == 1
        assert status.total == 5
        assert status.outcomes == {"masked": 1, "sdc": 1}
        assert status.live_workers == 1
        assert len(status.workers) == 2
        assert status.rate_per_second > 0
        assert status.eta_seconds is not None
        assert status.eta_seconds > 0

    def test_render_status_mentions_key_numbers(self, tmp_path):
        self._make_share(tmp_path)
        text = render_status(read_status(str(tmp_path),
                                         clock=lambda: 1000.0))
        assert "2/5 completed" in text
        assert "todo=1" in text
        assert "stale=1" in text
        assert "masked=1" in text

    def test_single_completed_result_reports_no_bogus_eta(self,
                                                          tmp_path):
        """One completed result spans zero time: the rate must stay 0
        and the ETA unknown (None), not inf or a crash."""
        now = 1000.0
        for sub in ("todo", "results", "claims"):
            os.makedirs(tmp_path / sub)
        (tmp_path / "todo" / "exp_0001.txt").write_text("x")
        (tmp_path / "claims" / "exp_0000.txt.claim").write_text(
            json.dumps({"worker": "ws0", "pid": 1, "time": now - 30}))
        (tmp_path / "results" / "exp_0000.json").write_text(
            json.dumps({"outcome": "sdc"}))
        status = read_status(str(tmp_path), clock=lambda: now)
        assert status.completed == 1
        assert status.rate_per_second == 0.0
        assert status.eta_seconds is None
        assert "eta" not in render_status(status)

    def test_results_sharing_one_mtime_report_no_infinite_rate(
            self, tmp_path):
        """Coarse filesystem timestamps can stamp a whole batch with a
        single mtime; the zero-width span must not extrapolate."""
        now = 1000.0
        for sub in ("todo", "results", "claims"):
            os.makedirs(tmp_path / sub)
        (tmp_path / "todo" / "exp_0009.txt").write_text("x")
        for index in range(3):
            name = f"exp_{index:04d}"
            (tmp_path / "claims" / f"{name}.txt.claim").write_text(
                json.dumps({"worker": "ws0", "pid": 1,
                            "time": now - 60}))
            path = tmp_path / "results" / f"{name}.json"
            path.write_text(json.dumps({"outcome": "masked"}))
            os.utime(path, (now - 60, now - 60))
        status = read_status(str(tmp_path), clock=lambda: now)
        assert status.completed == 3
        assert status.rate_per_second == 0.0
        assert status.eta_seconds is None
        assert status.elapsed_seconds == 60.0

    def test_zero_completed_first_frame_reports_no_rate_or_eta(
            self, tmp_path):
        """The very first status frame of a campaign — work published,
        nothing completed yet — must report rate 0 and ETA unknown,
        not divide by zero or extrapolate from an empty span."""
        now = 1000.0
        os.makedirs(tmp_path / "todo")
        for index in range(4):
            (tmp_path / "todo" / f"exp_{index:04d}.txt").write_text("x")
        status = read_status(str(tmp_path), clock=lambda: now)
        assert status.completed == 0
        assert status.total == 4
        assert status.rate_per_second == 0.0
        assert status.eta_seconds is None
        text = render_status(status)
        assert "0/4 completed" in text
        assert "eta" not in text

    def test_status_coverage_frame_is_opt_in(self, tmp_path):
        """read_status(coverage=True) attaches the heatmap-free
        coverage summary; the default frame (and its dict) stays
        byte-identical to the pre-coverage tool."""
        os.makedirs(tmp_path / "results")
        (tmp_path / "results" / "exp_0000.json").write_text(
            json.dumps({"outcome": "sdc", "fault_file": REG_FAULT,
                        "time_fraction": 0.5, "injected": True}))
        plain = read_status(str(tmp_path), clock=lambda: 1000.0)
        assert plain.coverage is None
        assert "coverage" not in plain.as_dict()
        status = read_status(str(tmp_path), clock=lambda: 1000.0,
                             coverage=True)
        assert status.coverage is not None
        assert status.coverage["accounted"]["experiments"] == 1
        assert "heatmaps" not in status.coverage
        assert "coverage" in status.as_dict()
        text = render_status(status)
        assert "coverage" in text
        assert "margin" in text

    def test_drained_queue_eta_zero_even_without_rate(self, tmp_path):
        for sub in ("results", "claims"):
            os.makedirs(tmp_path / sub)
        now = 1000.0
        (tmp_path / "claims" / "exp_0000.txt.claim").write_text(
            json.dumps({"worker": "ws0", "pid": 1, "time": now - 10}))
        (tmp_path / "results" / "exp_0000.json").write_text(
            json.dumps({"outcome": "sdc"}))
        status = read_status(str(tmp_path), clock=lambda: now)
        assert status.todo == 0 and status.claimed == 0
        assert status.eta_seconds == 0.0

    def test_campaign_metrics_from_dicts(self):
        results = [
            {"outcome": "masked", "wall_seconds": 1.0, "injected": True},
            {"outcome": "sdc", "wall_seconds": 3.0, "injected": True},
            {"outcome": "masked", "wall_seconds": 2.0,
             "injected": False},
        ]
        flat = campaign_metrics(results).as_flat_dict()
        assert flat["campaign.experiments"] == 3
        assert flat["campaign.injected"] == 2
        assert flat["campaign.outcome.masked"] == 2
        assert flat["campaign.wall_seconds.all.count"] == 3
        assert flat["campaign.wall_seconds.sdc.mean"] == 3.0


# -- campaign runner integration ----------------------------------------------


class TestCampaignIntegration:
    @pytest.fixture(scope="class")
    def runner(self):
        from repro.campaign import CampaignRunner
        from repro.workloads import build
        return CampaignRunner(build("pi", "tiny"))

    def test_result_dict_is_self_describing(self, runner):
        from repro.campaign import SEUGenerator
        from repro.core import parse_fault_file
        generator = SEUGenerator(runner.golden.profile, seed=11)
        fault = generator.batch(1)[0]
        result = runner.run_experiment(fault, seed=11)
        payload = result.as_dict()
        assert payload["workload"] == "pi"
        assert payload["seed"] == 11
        # The recorded fault file re-parses to the same fault.
        again = parse_fault_file(payload["fault_file"])
        assert [f.describe() for f in again] == [fault.describe()]

    def test_experiment_events_on_runner_bus(self, runner):
        from repro.campaign import SEUGenerator
        sink = ListSink()
        runner.bus = TraceBus(sink)
        try:
            generator = SEUGenerator(runner.golden.profile, seed=12)
            runner.run_experiment(generator.batch(1)[0])
        finally:
            runner.bus = None
        kinds = [e.kind for e in sink.events]
        assert kinds[0] == "experiment_start"
        assert kinds[-1] == "experiment_end"
        assert "checkpoint_restore" in kinds
        end = sink.of_kind("experiment_end")[0]
        assert end.data["outcome"]
        assert end.data["wall_seconds"] > 0

    def test_worker_loop_writes_heartbeats_and_manifests(
            self, runner, tmp_path):
        from repro.campaign import SEUGenerator, SharedDirCampaign
        campaign = SharedDirCampaign(str(tmp_path), "pi", "tiny")
        generator = SEUGenerator(runner.golden.profile, seed=13)
        campaign.publish(runner, generator.batch(2), seed=13)
        completed = campaign.worker_loop("ws0", runner)
        assert completed == 2
        beats = read_heartbeats(str(tmp_path))
        assert beats["ws0"]["completed"] == 2
        manifests = sorted(os.listdir(tmp_path / "manifests"))
        assert manifests == ["exp_0000.json", "exp_0001.json"]
        with open(tmp_path / "manifests" / "exp_0000.json") as handle:
            manifest = json.load(handle)
        assert manifest["workload"] == "pi"
        assert manifest["seed"] == 13
        assert manifest["worker"] == "ws0"
        assert manifest["outcome"]
        assert manifest["fault_file"]
        # Results carry the published seed too.
        with open(tmp_path / "results" / "exp_0000.json") as handle:
            assert json.load(handle)["seed"] == 13
        # A drained campaign reads as fully complete: finished claims
        # (which stay in claimed/) must not count as in flight.
        status = read_status(str(tmp_path))
        assert status.completed == 2
        assert status.claimed == 0
        assert status.todo == 0
        assert status.eta_seconds == 0.0


# -- CLI surfaces -------------------------------------------------------------


@pytest.fixture
def minic_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text(WINDOWED)
    return str(path)


class TestCliSurfaces:
    def test_trace_streams_jsonl(self, minic_file, capsys):
        assert main(["trace", minic_file, "--fault", REG_FAULT]) == 0
        out = capsys.readouterr().out
        events = list(events_from_jsonl(out))
        kinds = [e.kind for e in events]
        assert kinds[0] == "fault_armed"
        assert "fault_injected" in kinds
        assert "process_exit" in kinds

    def test_trace_to_file_and_ring(self, minic_file, tmp_path, capsys):
        trace_path = tmp_path / "t.jsonl"
        assert main(["trace", minic_file, "--trace-file",
                     str(trace_path)]) == 0
        assert list(events_from_jsonl(trace_path.read_text()))
        assert main(["trace", minic_file, "--ring", "2"]) == 0
        ring_out = capsys.readouterr().out
        assert len(list(events_from_jsonl(ring_out))) <= 2

    def test_status_command(self, tmp_path, capsys):
        TestCampaignObservability()._make_share(tmp_path)
        assert main(["status", str(tmp_path)]) == 0
        assert "completed" in capsys.readouterr().out
        assert main(["status", str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total"] == 5

    def test_stats_diff_command(self, tmp_path, capsys):
        a = tmp_path / "a.txt"
        b = tmp_path / "b.txt"
        a.write_text("x 1\ny 2\n")
        b.write_text("x 1\ny 2\n")
        assert main(["stats-diff", str(a), str(b)]) == 0
        assert "0 differences" in capsys.readouterr().out
        b.write_text("x 1\ny 3\n")
        assert main(["stats-diff", str(a), str(b)]) == 1
        assert "~ y 2 -> 3" in capsys.readouterr().out


# -- stats-diff tolerance -----------------------------------------------------


class TestStatsDiffTolerance:
    A = "sim.ticks 1000\nsystem.cpu0.committed 50\n"
    B = "sim.ticks 1010\nsystem.cpu0.committed 51\n"

    def test_strict_by_default(self):
        differences = diff_stats(self.A, self.B)
        assert len(differences) == 2

    def test_tolerance_forgives_only_timing_stats(self):
        differences = diff_stats(self.A, self.B, tolerance=0.05)
        assert differences == [
            "~ system.cpu0.committed 50 -> 51"]

    def test_tolerance_still_reports_large_timing_drift(self):
        differences = diff_stats("sim.ticks 1000\n", "sim.ticks 2000\n",
                                 tolerance=0.05)
        assert differences == ["~ sim.ticks 1000 -> 2000"]

    def test_non_numeric_timing_values_stay_strict(self):
        differences = diff_stats("boot.ticks abc\n", "boot.ticks abd\n",
                                 tolerance=0.5)
        assert differences == ["~ boot.ticks abc -> abd"]

    def test_cli_tolerance_flag(self, tmp_path, capsys):
        a = tmp_path / "a.txt"
        b = tmp_path / "b.txt"
        a.write_text("sim.ticks 1000\nsystem.cpu0.committed 50\n")
        b.write_text("sim.ticks 1001\nsystem.cpu0.committed 50\n")
        assert main(["stats-diff", str(a), str(b)]) == 1
        capsys.readouterr()
        assert main(["stats-diff", str(a), str(b),
                     "--tolerance", "0.01"]) == 0
        assert "0 differences" in capsys.readouterr().out


# -- live tailing: trace --follow and status --watch --------------------------


def _append_events_slowly(path: str, events, delay: float = 0.02):
    """Writer-thread body: append JSONL lines with a flush per line."""
    with open(path, "a", encoding="utf-8") as handle:
        for event in events:
            handle.write(event.to_json() + "\n")
            handle.flush()
            time.sleep(delay)


class TestFollowTrace:
    EVENTS = [
        TraceEvent("fault_armed", 0, {"fault": "f0"}),
        TraceEvent("fault_injected", 120, {"location": "int 1"}),
        TraceEvent("trap", 200, {"reason": "page_fault"}),
        TraceEvent("process_exit", 260, {"code": 0}),
    ]

    def test_follow_jsonl_sees_lines_from_live_writer(self, tmp_path):
        path = tmp_path / "live.jsonl"
        path.write_text("")
        writer = threading.Thread(
            target=_append_events_slowly,
            args=(str(path), self.EVENTS))
        writer.start()
        try:
            got = list(follow_jsonl(str(path), poll=0.01,
                                    idle_timeout=0.5))
        finally:
            writer.join()
        assert got == self.EVENTS

    def test_follow_jsonl_buffers_partial_lines(self, tmp_path):
        path = tmp_path / "partial.jsonl"
        line = self.EVENTS[0].to_json() + "\n"
        path.write_text("")
        writes = [line[:10], line[10:]]  # torn write mid-line

        def feed():
            with open(path, "a", encoding="utf-8") as handle:
                for part in writes:
                    handle.write(part)
                    handle.flush()
                    time.sleep(0.05)

        writer = threading.Thread(target=feed)
        writer.start()
        try:
            got = list(follow_jsonl(str(path), poll=0.01,
                                    idle_timeout=0.4))
        finally:
            writer.join()
        assert got == [self.EVENTS[0]]

    def test_cli_trace_follow(self, tmp_path, capsys):
        path = tmp_path / "cli.jsonl"
        path.write_text("")
        writer = threading.Thread(
            target=_append_events_slowly,
            args=(str(path), self.EVENTS))
        writer.start()
        try:
            code = main(["trace", str(path), "--follow",
                         "--poll", "0.01", "--idle-timeout", "0.4"])
        finally:
            writer.join()
        assert code == 0
        out = capsys.readouterr().out
        tailed = list(events_from_jsonl(out))
        assert tailed == self.EVENTS

    def test_cli_trace_follow_requires_path(self, capsys):
        assert main(["trace", "--follow"]) == 2
        assert "tail" in capsys.readouterr().err


class TestStatusWatch:
    def test_watch_count_refreshes_then_exits(self, tmp_path, capsys):
        TestCampaignObservability()._make_share(tmp_path)
        assert main(["status", str(tmp_path), "--watch", "0.01",
                     "--watch-count", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("experiments :") == 2
        assert out.count("queue") == 2

    def test_watch_zero_renders_once(self, tmp_path, capsys):
        TestCampaignObservability()._make_share(tmp_path)
        assert main(["status", str(tmp_path)]) == 0
        assert capsys.readouterr().out.count("experiments :") == 1


# -- trace-bus continuity across checkpoint restore ---------------------------


class TestBusContinuityAcrossRestore:
    """Events emitted after ``restore_checkpoint`` must land on the same
    bus/sink, with ticks that never run backwards (satellite 4)."""

    @pytest.mark.parametrize("model",
                             ["atomic", "timing", "inorder", "o3"])
    def test_restore_keeps_bus_and_monotonic_ticks(self, model):
        sink = ListSink()
        bus = TraceBus(sink)
        injector = FaultInjector.from_text(REG_FAULT)
        sim = Simulator(SimConfig(cpu_model=model), injector=injector,
                        bus=bus)
        sim.load(compile_source(WINDOWED), "test")
        holder = {}
        sim.on_checkpoint = lambda s: holder.__setitem__(
            "blob", dumps_checkpoint(s))
        sim.run(until_checkpoint=True, max_instructions=2_000_000)
        assert "blob" in holder
        pre_restore = len(sink.events)
        assert sink.of_kind("checkpoint_save")

        faults = parse_fault_file(REG_FAULT)
        restored = restore_checkpoint(holder["blob"], faults=faults,
                                      bus=bus)
        result = restored.run(max_instructions=2_000_000)
        assert result.status == "completed"
        assert restored.process(0).state.value == "exited"

        # Same sink kept receiving: restore marker plus the rest of the
        # run's lifecycle landed after the pre-restore events.
        kinds = [e.kind for e in sink.events]
        assert "checkpoint_restore" in kinds[pre_restore:]
        assert "process_exit" in kinds[pre_restore:]
        assert sink.of_kind("fault_injected")

        # Ticks never regress: the restored clock resumes from the
        # checkpointed tick, not from zero.
        ticks = [e.tick for e in sink.events]
        assert ticks == sorted(ticks)
        restore_event = sink.of_kind("checkpoint_restore")[0]
        assert restore_event.tick > 0


class TestServiceAwareStatus:
    """read_status on a service-run share (a service.json marker)
    surfaces the owning job/tenant and live queue numbers; a plain
    NoW share stays byte-identical to the pre-service output."""

    def _plain_share(self, tmp_path):
        for sub in ("todo", "results", "claims"):
            os.makedirs(tmp_path / sub, exist_ok=True)
        (tmp_path / "results" / "exp_0000.json").write_text(
            json.dumps({"outcome": "masked"}))

    def test_plain_share_has_no_service_key(self, tmp_path):
        self._plain_share(tmp_path)
        status = read_status(str(tmp_path), clock=lambda: 1000.0)
        assert status.service is None
        assert "service" not in status.as_dict()
        assert "service" not in render_status(status)

    def test_service_marker_names_job_and_tenant(self, tmp_path):
        self._plain_share(tmp_path)
        (tmp_path / "service.json").write_text(json.dumps(
            {"job": "job-abc", "tenant": "alice"}))
        status = read_status(str(tmp_path), clock=lambda: 1000.0)
        assert status.service == {"job": "job-abc",
                                  "tenant": "alice"}
        assert status.as_dict()["service"]["job"] == "job-abc"
        text = render_status(status)
        assert "job=job-abc" in text
        assert "tenant=alice" in text

    def test_service_marker_pulls_queue_depth_and_tenants(
            self, tmp_path):
        from repro.service import JobQueue, JobSpec
        queue = JobQueue(str(tmp_path / "queue.db"))
        spec = JobSpec.from_dict({"workload": "pi",
                                  "experiments": 2})
        queue.submit(spec, tenant="alice")
        queue.submit(JobSpec.from_dict({"workload": "pi",
                                        "experiments": 2,
                                        "seed": 1}), tenant="bob")
        share = tmp_path / "share"
        self._plain_share(share)
        (share / "service.json").write_text(json.dumps(
            {"job": "job-abc", "tenant": "alice",
             "queue_db": str(tmp_path / "queue.db")}))
        status = read_status(str(share), clock=lambda: 1000.0)
        assert status.service["queue_depth"] == 2
        assert status.service["tenants"]["alice"] == {"queued": 1}
        assert status.service["tenants"]["bob"] == {"queued": 1}
        text = render_status(status)
        assert "queue_depth=2" in text
        assert "tenant bob: queued=1" in text

    def test_corrupt_service_marker_is_ignored(self, tmp_path):
        self._plain_share(tmp_path)
        (tmp_path / "service.json").write_text('{"job": trunc')
        status = read_status(str(tmp_path), clock=lambda: 1000.0)
        assert status.service is None

    def test_unreachable_queue_db_degrades_gracefully(self, tmp_path):
        self._plain_share(tmp_path)
        (tmp_path / "service.json").write_text(json.dumps(
            {"job": "job-abc", "tenant": "alice",
             "queue_db": str(tmp_path / "missing.db")}))
        status = read_status(str(tmp_path), clock=lambda: 1000.0)
        assert status.service["job"] == "job-abc"
        assert "queue_depth" not in status.service
