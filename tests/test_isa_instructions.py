"""Decoder and instruction-semantics tests."""

import math

import pytest

from repro.isa import encoding as enc
from repro.isa import instructions as ins
from repro.isa.encoding import Field
from repro.isa.registers import float_to_bits, bits_to_float
from repro.isa.traps import ArithmeticTrap, IllegalInstruction


def _decode_op(opcode, func, ra=1, rb=2, rc=3):
    return ins.decode(enc.encode_operate(opcode, ra, rb, func, rc))


class TestDecode:
    def test_memory_format(self):
        d = ins.decode(enc.encode_memory(ins.OP_LDQ, 4, 30, -16))
        assert d.name == "ldq"
        assert d.kind == ins.KIND_LOAD
        assert (d.ra, d.rb, d.disp, d.size) == (4, 30, -16, 8)

    def test_store_format(self):
        d = ins.decode(enc.encode_memory(ins.OP_STL, 7, 8, 100))
        assert d.name == "stl"
        assert d.kind == ins.KIND_STORE
        assert d.size == 4

    def test_fp_memory(self):
        d = ins.decode(enc.encode_memory(ins.OP_LDT, 2, 30, 8))
        assert d.name == "ldt"
        assert d.kind == ins.KIND_FLOAD

    def test_lda_ldah(self):
        d = ins.decode(enc.encode_memory(ins.OP_LDA, 1, 2, 5))
        assert d.kind == ins.KIND_LDA and d.disp == 5
        d = ins.decode(enc.encode_memory(ins.OP_LDAH, 1, 2, 3))
        assert d.disp == 3 * 65536

    def test_operate_register_and_literal(self):
        d = _decode_op(ins.OP_INTA, 0x20)
        assert d.name == "addq" and d.lit is None
        d = ins.decode(enc.encode_operate_lit(ins.OP_INTA, 1, 77, 0x20, 3))
        assert d.lit == 77

    def test_branch(self):
        d = ins.decode(enc.encode_branch(ins.OP_BEQ, 9, -10))
        assert d.name == "beq" and d.kind == ins.KIND_BRANCH
        assert d.disp == -10

    def test_fp_branch(self):
        d = ins.decode(enc.encode_branch(ins.OP_FBLT, 3, 2))
        assert d.name == "fblt" and d.kind == ins.KIND_FBRANCH

    def test_unconditional_and_jump(self):
        d = ins.decode(enc.encode_branch(ins.OP_BSR, 26, 4))
        assert d.kind == ins.KIND_BR
        d = ins.decode(enc.encode_memory(ins.OP_JMP, 26, 27, 0))
        assert d.kind == ins.KIND_JUMP

    def test_pal_and_fi(self):
        d = ins.decode(enc.encode_palcode(ins.OP_PAL, ins.PAL_CALLSYS))
        assert d.name == "callsys" and d.kind == ins.KIND_PAL
        d = ins.decode(enc.encode_palcode(ins.OP_FI, ins.FI_ACTIVATE))
        assert d.name == "fi_activate_inst" and d.kind == ins.KIND_FI

    def test_illegal_major_opcode(self):
        for opcode in (0x02, 0x07, 0x0B, 0x15, 0x18, 0x20, 0x2A):
            with pytest.raises(IllegalInstruction):
                ins.decode(opcode << 26)

    def test_illegal_function_code(self):
        with pytest.raises(IllegalInstruction):
            _decode_op(ins.OP_INTA, 0x7F)
        with pytest.raises(IllegalInstruction):
            ins.decode(enc.encode_fp_operate(ins.OP_FLTI, 1, 2, 0x7FF, 3))

    def test_illegal_pal_function(self):
        with pytest.raises(IllegalInstruction):
            ins.decode(enc.encode_palcode(ins.OP_PAL, 0x1234))


class TestIntegerSemantics:
    def test_addq_wraps(self):
        d = _decode_op(ins.OP_INTA, 0x20)
        assert d.op((1 << 64) - 1, 1) == 0

    def test_addl_sign_extends(self):
        d = _decode_op(ins.OP_INTA, 0x00)
        assert d.op(0x7FFFFFFF, 1) == 0xFFFFFFFF80000000

    def test_subq(self):
        d = _decode_op(ins.OP_INTA, 0x29)
        assert d.op(3, 5) == (1 << 64) - 2

    def test_scaled_adds(self):
        assert _decode_op(ins.OP_INTA, 0x22).op(3, 100) == 112
        assert _decode_op(ins.OP_INTA, 0x32).op(3, 100) == 124

    def test_signed_compares(self):
        minus_one = (1 << 64) - 1
        assert _decode_op(ins.OP_INTA, 0x4D).op(minus_one, 1) == 1  # cmplt
        assert _decode_op(ins.OP_INTA, 0x1D).op(minus_one, 1) == 0  # cmpult
        assert _decode_op(ins.OP_INTA, 0x2D).op(7, 7) == 1          # cmpeq
        assert _decode_op(ins.OP_INTA, 0x6D).op(7, 7) == 1          # cmple

    def test_logicals(self):
        assert _decode_op(ins.OP_INTL, 0x00).op(0b1100, 0b1010) == 0b1000
        assert _decode_op(ins.OP_INTL, 0x20).op(0b1100, 0b1010) == 0b1110
        assert _decode_op(ins.OP_INTL, 0x40).op(0b1100, 0b1010) == 0b0110
        assert _decode_op(ins.OP_INTL, 0x08).op(0b1100, 0b1010) == 0b0100

    def test_shifts(self):
        assert _decode_op(ins.OP_INTS, 0x39).op(1, 63) == 1 << 63
        assert _decode_op(ins.OP_INTS, 0x34).op(1 << 63, 63) == 1
        # Arithmetic shift drags the sign bit.
        assert _decode_op(ins.OP_INTS, 0x3C).op(1 << 63, 63) == \
            (1 << 64) - 1

    def test_multiply(self):
        assert _decode_op(ins.OP_INTM, 0x20).op(1 << 32, 1 << 32) == 0
        assert _decode_op(ins.OP_INTM, 0x00).op(0xFFFF, 0x10000) == \
            0xFFFFFFFFFFFF0000  # mull sign-extends the 32-bit product

    def test_divide_truncates_toward_zero(self):
        divq = _decode_op(ins.OP_INTM, 0x40)
        minus7 = (-7) & ((1 << 64) - 1)
        assert divq.op(7, 2) == 3
        assert divq.op(minus7, 2) == (-3) & ((1 << 64) - 1)

    def test_divide_by_zero_traps(self):
        with pytest.raises(ArithmeticTrap):
            _decode_op(ins.OP_INTM, 0x40).op(1, 0)
        with pytest.raises(ArithmeticTrap):
            _decode_op(ins.OP_INTM, 0x60).op(1, 0)

    def test_remainder_sign_follows_dividend(self):
        remq = _decode_op(ins.OP_INTM, 0x60)
        minus7 = (-7) & ((1 << 64) - 1)
        assert remq.op(7, 2) == 1
        assert remq.op(minus7, 2) == (-1) & ((1 << 64) - 1)


class TestFloatSemantics:
    def _fp(self, func):
        word = enc.encode_fp_operate(ins.OP_FLTI, 1, 2, func, 3)
        return ins.decode(word)

    def test_addt(self):
        d = self._fp(0x0A0)
        out = d.op(float_to_bits(1.5), float_to_bits(2.25))
        assert bits_to_float(out) == 3.75

    def test_divt_by_zero_gives_inf(self):
        d = self._fp(0x0A3)
        out = d.op(float_to_bits(1.0), float_to_bits(0.0))
        assert math.isinf(bits_to_float(out))
        out = d.op(float_to_bits(0.0), float_to_bits(0.0))
        assert math.isnan(bits_to_float(out))

    def test_compare_writes_two_or_zero(self):
        d = self._fp(0x0A6)  # cmptlt
        assert bits_to_float(d.op(float_to_bits(1.0),
                                  float_to_bits(2.0))) == 2.0
        assert bits_to_float(d.op(float_to_bits(3.0),
                                  float_to_bits(2.0))) == 0.0

    def test_cvttq_truncates(self):
        d = self._fp(0x0AF)
        assert d.op(0, float_to_bits(3.9)) == 3
        assert d.op(0, float_to_bits(-3.9)) == (-3) & ((1 << 64) - 1)
        assert d.op(0, float_to_bits(math.nan)) == 0

    def test_cvtqt(self):
        d = self._fp(0x0BE)
        assert bits_to_float(d.op(0, (-5) & ((1 << 64) - 1))) == -5.0

    def test_sqrtt_of_negative_is_nan(self):
        word = enc.encode_fp_operate(ins.OP_ITFP, 31, 2, 0x0AB, 3)
        d = ins.decode(word)
        assert math.isnan(bits_to_float(d.op(0, float_to_bits(-1.0))))

    def test_cpys_copies_sign(self):
        word = enc.encode_fp_operate(ins.OP_FLTL, 1, 2, 0x020, 3)
        d = ins.decode(word)
        out = d.op(float_to_bits(-1.0), float_to_bits(42.0))
        assert bits_to_float(out) == -42.0

    def test_fp_overflow_saturates_to_inf(self):
        d = self._fp(0x0A2)  # mult
        big = float_to_bits(1e308)
        assert math.isinf(bits_to_float(d.op(big, big)))


class TestDecodedIntrospection:
    def test_src_dest_regs_alu(self):
        d = _decode_op(ins.OP_INTA, 0x20, ra=1, rb=2, rc=3)
        assert d.src_regs() == [("int", 1), ("int", 2)]
        assert d.dest_regs() == [("int", 3)]
        assert d.src_reg_fields() == ["ra", "rb"]
        assert d.dest_reg_fields() == ["rc"]

    def test_src_dest_regs_store(self):
        d = ins.decode(enc.encode_memory(ins.OP_STQ, 5, 30, 0))
        assert ("int", 5) in d.src_regs()
        assert ("int", 30) in d.src_regs()
        assert d.dest_regs() == []

    def test_copy_is_independent(self):
        d = _decode_op(ins.OP_INTA, 0x20)
        clone = d.copy()
        clone.ra = 17
        assert d.ra == 1

    def test_field_of_fetch_bit_on_real_words(self):
        word = enc.encode_operate(ins.OP_INTA, 1, 2, 0x20, 3)
        assert ins.field_of_fetch_bit(word, 14) is Field.UNUSED
        assert ins.field_of_fetch_bit(word, 28) is Field.OPCODE
        word = enc.encode_memory(ins.OP_LDQ, 1, 2, 100)
        assert ins.field_of_fetch_bit(word, 3) is Field.DISPLACEMENT


class TestDecodeCache:
    def test_hit_returns_same_object(self):
        cache = ins.DecodeCache()
        word = enc.encode_operate(ins.OP_INTA, 1, 2, 0x20, 3)
        assert cache.decode(word) is cache.decode(word)

    def test_disabled_cache_decodes_fresh(self):
        cache = ins.DecodeCache(enabled=False)
        word = enc.encode_operate(ins.OP_INTA, 1, 2, 0x20, 3)
        assert cache.decode(word) is not cache.decode(word)

    def test_clear(self):
        cache = ins.DecodeCache()
        word = ins.NOP_WORD
        first = cache.decode(word)
        cache.clear()
        assert cache.decode(word) is not first
