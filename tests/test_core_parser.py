"""Fault-input-file parser tests (Listing 1 syntax)."""

import pytest

from repro.core import (
    BehaviorKind,
    FaultParseError,
    LocationKind,
    PERMANENT,
    TimeMode,
    parse_fault_file,
    parse_fault_line,
    render_fault_file,
)

LISTING_1 = ('"RegisterInjectedFault Inst:2457 Flip:21 Threadid:0 '
             'system.cpu1 occ:1 int 1"')


class TestParseLine:
    def test_listing_1_example(self):
        fault = parse_fault_line(LISTING_1.strip('"'))
        assert fault.location is LocationKind.INT_REG
        assert fault.time_mode is TimeMode.INSTRUCTIONS
        assert fault.time == 2457
        assert fault.behavior.kind is BehaviorKind.FLIP
        assert fault.behavior.bits == (21,)
        assert fault.thread_id == 0
        assert fault.cpu == "system.cpu1"
        assert fault.behavior.occ == 1
        assert fault.reg_index == 1

    def test_fp_register(self):
        fault = parse_fault_line(
            "RegisterInjectedFault Inst:10 All0 Threadid:2 "
            "system.cpu0 occ:1 fp 7")
        assert fault.location is LocationKind.FP_REG
        assert fault.reg_index == 7
        assert fault.thread_id == 2

    def test_pc_fault_with_xor(self):
        fault = parse_fault_line(
            "PCInjectedFault Tick:10000 Xor:0xff Threadid:0 "
            "system.cpu0 occ:1")
        assert fault.location is LocationKind.PC
        assert fault.time_mode is TimeMode.TICKS
        assert fault.behavior.kind is BehaviorKind.XOR
        assert fault.behavior.operand == 0xFF

    def test_stage_faults(self):
        for head, location in (
                ("FetchStageInjectedFault", LocationKind.FETCH),
                ("ExecutionStageInjectedFault", LocationKind.EXECUTE),
                ("MemoryInjectedFault", LocationKind.MEM)):
            fault = parse_fault_line(
                f"{head} Inst:5 Flip:3 Threadid:0 system.cpu0 occ:1")
            assert fault.location is location

    def test_decode_fault_with_operand_role(self):
        fault = parse_fault_line(
            "DecodeStageInjectedFault Inst:100 Flip:2 Threadid:0 "
            "system.cpu0 occ:1 dst 0")
        assert fault.location is LocationKind.DECODE
        assert fault.operand_role == "dst"
        assert fault.operand_index == 0

    def test_multiple_flip_bits(self):
        fault = parse_fault_line(
            "FetchStageInjectedFault Inst:1 Flip:1,2,31 Threadid:0 "
            "system.cpu0 occ:1")
        assert fault.behavior.bits == (1, 2, 31)

    def test_permanent_occurrence(self):
        fault = parse_fault_line(
            "MemoryInjectedFault Inst:1 All1 Threadid:0 system.cpu0 "
            "occ:permanent")
        assert fault.behavior.occ == PERMANENT

    def test_immediate_behavior(self):
        fault = parse_fault_line(
            "ExecutionStageInjectedFault Inst:9 Imm:0x42 Threadid:0 "
            "system.cpu0 occ:3")
        assert fault.behavior.kind is BehaviorKind.IMMEDIATE
        assert fault.behavior.operand == 0x42
        assert fault.behavior.occ == 3

    def test_token_order_is_flexible(self):
        fault = parse_fault_line(
            "RegisterInjectedFault int 3 occ:2 system.cpu0 Threadid:1 "
            "Flip:4 Inst:77")
        assert fault.reg_index == 3
        assert fault.time == 77


class TestParseErrors:
    def test_unknown_head(self):
        with pytest.raises(FaultParseError, match="unknown fault type"):
            parse_fault_line("BogusFault Inst:1 All0 occ:1")

    def test_missing_time(self):
        with pytest.raises(FaultParseError, match="time"):
            parse_fault_line("PCInjectedFault All0 Threadid:0 occ:1")

    def test_missing_behavior(self):
        with pytest.raises(FaultParseError, match="behavior"):
            parse_fault_line("PCInjectedFault Inst:1 Threadid:0 occ:1")

    def test_register_fault_requires_class_and_index(self):
        with pytest.raises(FaultParseError, match="int N"):
            parse_fault_line(
                "RegisterInjectedFault Inst:1 All0 Threadid:0 occ:1")

    def test_register_index_range(self):
        with pytest.raises(FaultParseError, match="outside"):
            parse_fault_line(
                "RegisterInjectedFault Inst:1 All0 Threadid:0 occ:1 "
                "int 32")

    def test_bad_integers(self):
        with pytest.raises(FaultParseError, match="bad integer"):
            parse_fault_line("PCInjectedFault Inst:xyz All0 occ:1")

    def test_bad_occ(self):
        with pytest.raises(FaultParseError, match="occ"):
            parse_fault_line("PCInjectedFault Inst:1 All0 occ:0")

    def test_bad_decode_role(self):
        with pytest.raises(FaultParseError, match="src/dst"):
            parse_fault_line(
                "DecodeStageInjectedFault Inst:1 Flip:0 occ:1 middle 0")

    def test_error_carries_line_number(self):
        with pytest.raises(FaultParseError, match="line 3"):
            parse_fault_file("# comment\n\nBogus Inst:1 All0\n")


class TestFileRoundTrip:
    def test_file_parse_skips_comments_and_blanks(self):
        faults = parse_fault_file(
            "# header\n\n"
            "PCInjectedFault Inst:1 All0 Threadid:0 occ:1\n"
            "   \n"
            "MemoryInjectedFault Inst:2 Flip:5 Threadid:0 occ:1\n")
        assert len(faults) == 2

    def test_render_then_parse_is_identity(self):
        lines = [
            "RegisterInjectedFault Inst:2457 Flip:21 Threadid:0 "
            "system.cpu1 occ:1 int 1",
            "PCInjectedFault Tick:999 Xor:0xff Threadid:3 "
            "system.cpu0 occ:permanent",
            "DecodeStageInjectedFault Inst:4 Flip:1 Threadid:0 "
            "system.cpu0 occ:2 dst 1",
            "FetchStageInjectedFault Inst:7 Imm:0 Threadid:0 "
            "system.cpu0 occ:1",
        ]
        first = parse_fault_file("\n".join(lines))
        second = parse_fault_file(render_fault_file(first))
        assert first == second
